package obs

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeStructure(t *testing.T) {
	root := NewTrace("request")
	root.SetAttr("request_id", "abc123")
	ctx := WithSpan(context.Background(), root)

	cache := StartSpan(ctx, "cache")
	cache.SetAttr("hit", false)
	cache.End()

	solve := StartSpan(ctx, "solve")
	sctx := WithSpan(ctx, solve)
	matrix := StartSpan(sctx, "matrix")
	time.Sleep(time.Millisecond)
	matrix.End()
	solve.End()
	root.End()

	tree := root.Tree()
	if tree.Name != "request" {
		t.Fatalf("root name = %q", tree.Name)
	}
	if got := tree.Attrs["request_id"]; got != "abc123" {
		t.Fatalf("request_id attr = %v", got)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(tree.Children))
	}
	if tree.Find("cache") == nil || tree.Find("solve") == nil {
		t.Fatal("missing cache/solve spans")
	}
	m := tree.Find("matrix")
	if m == nil {
		t.Fatal("matrix span not nested under tree")
	}
	if m.WallMs <= 0 {
		t.Fatalf("matrix wall = %v, want > 0", m.WallMs)
	}
	if s := tree.Find("solve"); s.WallMs < m.WallMs {
		t.Fatalf("solve wall %v < child matrix wall %v", s.WallMs, m.WallMs)
	}
	if _, err := json.Marshal(tree); err != nil {
		t.Fatalf("tree not JSON-marshalable: %v", err)
	}
}

func TestNilSpanSafety(t *testing.T) {
	var s *Span
	s.End()
	s.SetAttr("k", 1)
	if c := s.StartChild("x"); c != nil {
		t.Fatal("nil span produced a child")
	}
	if s.Tree() != nil {
		t.Fatal("nil span produced a tree")
	}
	if s.Wall() != 0 || s.Name() != "" {
		t.Fatal("nil span reported data")
	}
	if sp := StartSpan(context.Background(), "x"); sp != nil {
		t.Fatal("StartSpan without trace returned non-nil")
	}
}

// The solver hot paths call StartSpan/End/SetAttr unconditionally; with
// no trace attached the whole path must not allocate.
func TestUntracedSpanPathAllocationFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan(ctx, "stage")
		sp.SetAttr("k", 1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("untraced span path allocates %.1f per op, want 0", allocs)
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("request id lengths %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Fatal("consecutive request ids collide")
	}
	ctx := ContextWithRequestID(context.Background(), a)
	if got := RequestIDFrom(ctx); got != a {
		t.Fatalf("RequestIDFrom = %q, want %q", got, a)
	}
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Fatalf("empty context request id = %q", got)
	}
}

func TestRegistryRenderRoundTrips(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("tagdm_requests_total", "Requests by endpoint.", "endpoint")
	reqs.With("analyze").Add(3)
	reqs.With("actions").Inc()
	g := r.Gauge("tagdm_groups", "Active groups.")
	g.Set(42)
	r.GaugeFunc("tagdm_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	gv := r.GaugeVec("tagdm_postings", `Posting lists by layout with "quotes" and back\slash.`, "layout")
	gv.With(`weird"value`).Set(7)
	gv.With(`back\slash`).Set(8)
	h := r.HistogramVec("tagdm_solve_seconds", "Solve latency.", []float64{0.001, 0.01, 0.1}, "family")
	h.With("exact").Observe(0.001) // boundary: must land in le=0.001
	h.With("exact").Observe(0.05)
	h.With("exact").Observe(3)
	h.With("smlsh").Observe(0.002)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	p, err := ParsePrometheus([]byte(text))
	if err != nil {
		t.Fatalf("rendered text does not parse: %v\n%s", err, text)
	}
	if v, ok := p.Sample("tagdm_requests_total", "endpoint", "analyze"); !ok || v != 3 {
		t.Fatalf("analyze counter = %v %v", v, ok)
	}
	if v, ok := p.Sample("tagdm_groups"); !ok || v != 42 {
		t.Fatalf("groups gauge = %v %v", v, ok)
	}
	if v, ok := p.Sample("tagdm_uptime_seconds"); !ok || v != 1.5 {
		t.Fatalf("uptime gauge func = %v %v", v, ok)
	}
	if v, ok := p.Sample("tagdm_postings", "layout", `weird"value`); !ok || v != 7 {
		t.Fatalf("escaped label round-trip = %v %v", v, ok)
	}
	if v, ok := p.Sample("tagdm_postings", "layout", `back\slash`); !ok || v != 8 {
		t.Fatalf("backslash label round-trip = %v %v", v, ok)
	}
	if v, ok := p.Sample("tagdm_solve_seconds_bucket", "family", "exact", "le", "0.001"); !ok || v != 1 {
		t.Fatalf("boundary bucket = %v %v", v, ok)
	}
	if v, ok := p.Sample("tagdm_solve_seconds_bucket", "family", "exact", "le", "+Inf"); !ok || v != 3 {
		t.Fatalf("+Inf bucket = %v %v", v, ok)
	}
	if v, ok := p.Sample("tagdm_solve_seconds_count", "family", "exact"); !ok || v != 3 {
		t.Fatalf("hist count = %v %v", v, ok)
	}
	if v, ok := p.Sample("tagdm_solve_seconds_sum", "family", "exact"); !ok || math.Abs(v-3.051) > 1e-9 {
		t.Fatalf("hist sum = %v %v", v, ok)
	}
	if p.Types["tagdm_requests_total"] != "counter" || p.Types["tagdm_solve_seconds"] != "histogram" {
		t.Fatalf("types = %v", p.Types)
	}
	if !strings.Contains(p.Help["tagdm_postings"], `back\\slash`) {
		t.Fatalf("help not escaped: %q", p.Help["tagdm_postings"])
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", "x", DefaultLatencyBuckets())
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean != 0")
	}
	h.Observe(1)
	h.Observe(3)
	if h.Count() != 2 || h.Sum() != 4 || h.Mean() != 2 {
		t.Fatalf("count=%d sum=%v mean=%v", h.Count(), h.Sum(), h.Mean())
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "x")
	mustPanic("duplicate", func() { r.Counter("dup_total", "x") })
	mustPanic("bad name", func() { r.Counter("bad-name", "x") })
	mustPanic("bad label", func() { r.CounterVec("ok_total", "x", "bad-label") })
	mustPanic("le label", func() { r.HistogramVec("h_seconds", "x", []float64{1}, "le") })
	mustPanic("bad buckets", func() { r.Histogram("h2_seconds", "x", []float64{1, 1}) })
	v := r.CounterVec("labeled_total", "x", "a", "b")
	mustPanic("arity", func() { v.With("only-one") })
}

func TestParserRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no type":                "foo 1\n",
		"histogram base sample":  "# TYPE h histogram\nh 1\n",
		"untyped bucket":         "h_bucket{le=\"1\"} 1\n",
		"bad value":              "# TYPE foo counter\nfoo nope\n",
		"bad name":               "# TYPE foo counter\n1foo 2\n",
		"duplicate series":       "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"duplicate type":         "# TYPE foo counter\n# TYPE foo gauge\nfoo 1\n",
		"type after sample":      "# HELP foo x\nfoo 1\n# TYPE foo counter\n",
		"unterminated labels":    "# TYPE foo counter\nfoo{a=\"b\" 1\n",
		"bad escape":             "# TYPE foo counter\nfoo{a=\"\\q\"} 1\n",
		"duplicate label":        "# TYPE foo counter\nfoo{a=\"1\",a=\"2\"} 1\n",
		"interior blank line":    "# TYPE foo counter\n\nfoo 1\n",
		"missing inf bucket":     "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch":         "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"missing sum":            "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
		"unsorted le":            "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, text := range cases {
		if _, err := ParsePrometheus([]byte(text)); err == nil {
			t.Errorf("%s: parser accepted %q", name, text)
		}
	}
}

func TestParserAcceptsValidCorners(t *testing.T) {
	text := "# random comment\n" +
		"# TYPE foo counter\n" +
		"# HELP foo A counter with \\\\ escapes.\n" +
		"foo{a=\"x\"} 1 1712345678\n" +
		"foo 2e+06\n" +
		"# TYPE bar gauge\n" +
		"bar NaN\n"
	p, err := ParsePrometheus([]byte(text))
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if v, ok := p.Sample("foo"); !ok || v != 2e6 {
		t.Fatalf("scientific value = %v %v", v, ok)
	}
	if len(p.Samples) != 3 {
		t.Fatalf("samples = %d", len(p.Samples))
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("c_total", "x", "w")
	h := r.HistogramVec("h_seconds", "x", []float64{0.01, 0.1}, "w")
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			lbl := string(rune('a' + w%2))
			for i := 0; i < 1000; i++ {
				c.With(lbl).Inc()
				h.With(lbl).Observe(0.05)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if total := c.With("a").Value() + c.With("b").Value(); total != 4000 {
		t.Fatalf("counter total = %d", total)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePrometheus([]byte(b.String())); err != nil {
		t.Fatalf("concurrent render does not parse: %v", err)
	}
}
