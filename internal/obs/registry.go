package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a minimal Prometheus-style metrics registry: labeled
// counters, gauges, callback gauges and multi-bucket histograms, rendered
// in the Prometheus text exposition format (version 0.0.4) by WriteText.
//
// Handles returned by With are cached and safe for concurrent use; all
// updates are lock-free atomics so instrumented hot paths never contend
// on the registry lock (taken only on first-series creation and render).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	ordered  []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64      // histogram upper bounds, ascending, no +Inf
	fn      func() float64 // gaugeFunc only

	mu     sync.RWMutex
	series map[string]*series
	order  []*series
}

type series struct {
	values []string // label values, aligned with family.labels

	count atomic.Int64  // counter value
	bits  atomic.Uint64 // gauge value (float64 bits)
	hist  *histData
}

type histData struct {
	bucketCounts []atomic.Int64 // len(buckets)+1; last is +Inf overflow
	count        atomic.Int64
	sumBits      atomic.Uint64 // float64 bits, CAS-updated
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64, fn func() float64) *family {
	if !metricNameRe.MatchString(name) {
		panic("obs: invalid metric name " + name)
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l) || l == "le" {
			panic("obs: invalid label name " + l + " on " + name)
		}
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic("obs: histogram buckets must be strictly ascending on " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric registration " + name)
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  labels,
		buckets: buckets,
		fn:      fn,
		series:  make(map[string]*series),
	}
	r.families[name] = f
	r.ordered = append(r.ordered, f)
	return f
}

func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{values: append([]string(nil), values...)}
	if f.kind == kindHistogram {
		s.hist = &histData{bucketCounts: make([]atomic.Int64, len(f.buckets)+1)}
	}
	f.series[key] = s
	f.order = append(f.order, s)
	return s
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.count.Add(1) }

// Add adds n (must be non-negative to keep Prometheus semantics).
func (c *Counter) Add(n int64) { c.s.count.Add(n) }

// Value reads the current count. /v1/stats reads the same atomics that
// /metrics renders, so the two can never drift.
func (c *Counter) Value() int64 { return c.s.count.Load() }

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns (creating on first use) the counter for the label values.
func (v *CounterVec) With(values ...string) *Counter { return &Counter{v.f.with(values)} }

// Gauge is a settable float metric.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// With returns (creating on first use) the gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return &Gauge{v.f.with(values)} }

// Histogram is a cumulative-bucket histogram of float64 observations
// (by convention, seconds).
type Histogram struct {
	bounds []float64
	d      *histData
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.d.bucketCounts[idx].Add(1)
	h.d.count.Add(1)
	for {
		old := h.d.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.d.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.d.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.d.sumBits.Load()) }

// Mean returns Sum/Count, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// With returns (creating on first use) the histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{bounds: v.f.buckets, d: v.f.with(values).hist}
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil, nil)
	return &Counter{f.with(nil)}
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil, nil)}
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil, nil)
	return &Gauge{f.with(nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil, nil)}
}

// GaugeFunc registers a gauge whose value is computed at render time.
// Useful for values that already live behind their own synchronization
// (snapshot epoch, store sizes) — rendering calls fn, so it must not
// call back into the registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGaugeFunc, nil, nil, fn)
}

// Histogram registers an unlabeled histogram with the given ascending
// upper bounds (a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, buckets, nil)
	return &Histogram{bounds: buckets, d: f.with(nil).hist}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labels, buckets, nil)}
}

// DefaultLatencyBuckets spans 250µs to ~8.5s in powers of ~2, a spread
// that resolves both the sub-millisecond warm-cache solves on the small
// corpus and multi-second exact enumerations.
func DefaultLatencyBuckets() []float64 {
	return []float64{0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2, 4, 8}
}

// WriteText renders every family in registration order in the Prometheus
// text exposition format. Series render in first-use order, which is
// stable for a given process history; the format does not require any
// particular series order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.ordered...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, typeString(f.kind))
		switch f.kind {
		case kindGaugeFunc:
			fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(f.fn()))
		default:
			f.mu.RLock()
			order := append([]*series(nil), f.order...)
			f.mu.RUnlock()
			for _, s := range order {
				switch f.kind {
				case kindCounter:
					fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(f.labels, s.values, "", 0), s.count.Load())
				case kindGauge:
					fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labels, s.values, "", 0), formatValue(math.Float64frombits(s.bits.Load())))
				case kindHistogram:
					cum := int64(0)
					for i, bound := range f.buckets {
						cum += s.hist.bucketCounts[i].Load()
						fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, "le", bound), cum)
					}
					cum += s.hist.bucketCounts[len(f.buckets)].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, "le", math.Inf(1)), cum)
					fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labels, s.values, "", 0), formatValue(math.Float64frombits(s.hist.sumBits.Load())))
					fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(f.labels, s.values, "", 0), s.hist.count.Load())
				}
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func typeString(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// labelString renders {a="x",b="y"} plus an optional le bound; empty
// when there are no labels at all.
func labelString(names, values []string, extraName string, extraBound float64) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(formatValue(extraBound))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
