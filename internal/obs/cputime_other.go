//go:build !unix

package obs

import "time"

// cpuTime is unavailable without getrusage; spans report zero CPU.
func cpuTime() time.Duration { return 0 }
