package model

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// TagID identifies a tag in a Vocabulary.
type TagID int32

// Vocabulary is the tag dictionary T. Tags are free-form strings with a
// long-tail distribution; the vocabulary maps them to dense ids. It is safe
// for concurrent use: a streaming server interns new tags while analyses
// read the dictionary.
type Vocabulary struct {
	mu    sync.RWMutex
	tags  []string
	index map[string]TagID
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{index: make(map[string]TagID)}
}

// ID returns the id for tag, interning it if new.
func (v *Vocabulary) ID(tag string) TagID {
	v.mu.Lock()
	defer v.mu.Unlock()
	if id, ok := v.index[tag]; ok {
		return id
	}
	id := TagID(len(v.tags))
	v.tags = append(v.tags, tag)
	v.index[tag] = id
	return id
}

// Lookup returns the id of tag without interning.
func (v *Vocabulary) Lookup(tag string) (TagID, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	id, ok := v.index[tag]
	return id, ok
}

// Tag returns the string form of id; out-of-range ids render as "?".
func (v *Vocabulary) Tag(id TagID) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if id < 0 || int(id) >= len(v.tags) {
		return "?"
	}
	return v.tags[id]
}

// Size is the number of distinct tags.
func (v *Vocabulary) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.tags)
}

// User is a row of the user relation: an id plus one code per user-schema
// attribute.
type User struct {
	ID    int32
	Attrs []ValueCode
}

// Item is a row of the item relation.
type Item struct {
	ID    int32
	Attrs []ValueCode
}

// TaggingAction is one triple <u, i, T> plus an optional numeric rating
// (MovieLens-style datasets carry both; Rating is NaN-free, 0 means "none").
type TaggingAction struct {
	User   int32
	Item   int32
	Tags   []TagID
	Rating float64
}

// Dataset bundles the triple <U, I, T> and the set of tagging actions G.
type Dataset struct {
	UserSchema *Schema
	ItemSchema *Schema
	Vocab      *Vocabulary
	Users      []User
	Items      []Item
	Actions    []TaggingAction
}

// NewDataset allocates an empty dataset over the two schemas.
func NewDataset(userSchema, itemSchema *Schema) *Dataset {
	return &Dataset{
		UserSchema: userSchema,
		ItemSchema: itemSchema,
		Vocab:      NewVocabulary(),
	}
}

// AddUser appends a user built from a name->value attribute map and returns
// its id.
func (d *Dataset) AddUser(attrs map[string]string) (int32, error) {
	tuple, err := d.UserSchema.Encode(attrs)
	if err != nil {
		return 0, err
	}
	id := int32(len(d.Users))
	d.Users = append(d.Users, User{ID: id, Attrs: tuple})
	return id, nil
}

// AddItem appends an item built from a name->value attribute map and returns
// its id.
func (d *Dataset) AddItem(attrs map[string]string) (int32, error) {
	tuple, err := d.ItemSchema.Encode(attrs)
	if err != nil {
		return 0, err
	}
	id := int32(len(d.Items))
	d.Items = append(d.Items, Item{ID: id, Attrs: tuple})
	return id, nil
}

// AddAction appends a tagging action whose tags are interned into the
// dataset vocabulary.
func (d *Dataset) AddAction(user, item int32, rating float64, tags ...string) error {
	if user < 0 || int(user) >= len(d.Users) {
		return fmt.Errorf("model: action references unknown user %d", user)
	}
	if item < 0 || int(item) >= len(d.Items) {
		return fmt.Errorf("model: action references unknown item %d", item)
	}
	ids := make([]TagID, len(tags))
	for i, t := range tags {
		ids[i] = d.Vocab.ID(t)
	}
	d.Actions = append(d.Actions, TaggingAction{User: user, Item: item, Tags: ids, Rating: rating})
	return nil
}

// AddActionIDs appends a tagging action with pre-interned tag ids. The caller
// must have obtained the ids from this dataset's vocabulary.
func (d *Dataset) AddActionIDs(user, item int32, rating float64, tags []TagID) error {
	if user < 0 || int(user) >= len(d.Users) {
		return fmt.Errorf("model: action references unknown user %d", user)
	}
	if item < 0 || int(item) >= len(d.Items) {
		return fmt.Errorf("model: action references unknown item %d", item)
	}
	for _, t := range tags {
		if t < 0 || int(t) >= d.Vocab.Size() {
			return fmt.Errorf("model: action references unknown tag %d", t)
		}
	}
	d.Actions = append(d.Actions, TaggingAction{User: user, Item: item, Tags: tags, Rating: rating})
	return nil
}

// Validate checks referential integrity of every action and tuple width of
// every user and item.
func (d *Dataset) Validate() error {
	if d.UserSchema == nil || d.ItemSchema == nil || d.Vocab == nil {
		return errors.New("model: dataset missing schema or vocabulary")
	}
	for i, u := range d.Users {
		if len(u.Attrs) != d.UserSchema.Len() {
			return fmt.Errorf("model: user %d has %d attrs, schema has %d", i, len(u.Attrs), d.UserSchema.Len())
		}
	}
	for i, it := range d.Items {
		if len(it.Attrs) != d.ItemSchema.Len() {
			return fmt.Errorf("model: item %d has %d attrs, schema has %d", i, len(it.Attrs), d.ItemSchema.Len())
		}
	}
	for i, a := range d.Actions {
		if a.User < 0 || int(a.User) >= len(d.Users) {
			return fmt.Errorf("model: action %d references unknown user %d", i, a.User)
		}
		if a.Item < 0 || int(a.Item) >= len(d.Items) {
			return fmt.Errorf("model: action %d references unknown item %d", i, a.Item)
		}
		for _, t := range a.Tags {
			if t < 0 || int(t) >= d.Vocab.Size() {
				return fmt.Errorf("model: action %d references unknown tag %d", i, t)
			}
		}
	}
	return nil
}

// Stats summarizes a dataset for logs and README tables.
type Stats struct {
	Users        int
	Items        int
	Actions      int
	VocabSize    int
	TagOccur     int     // total tag occurrences across actions
	AvgTags      float64 // average tags per action
	DistinctUsed int     // distinct tags actually used
}

// Stats computes summary statistics in one pass.
func (d *Dataset) Stats() Stats {
	s := Stats{
		Users:     len(d.Users),
		Items:     len(d.Items),
		Actions:   len(d.Actions),
		VocabSize: d.Vocab.Size(),
	}
	used := make(map[TagID]struct{})
	for _, a := range d.Actions {
		s.TagOccur += len(a.Tags)
		for _, t := range a.Tags {
			used[t] = struct{}{}
		}
	}
	s.DistinctUsed = len(used)
	if s.Actions > 0 {
		s.AvgTags = float64(s.TagOccur) / float64(s.Actions)
	}
	return s
}

// TagFrequencies counts occurrences of every tag across all actions,
// returned in descending count order. It is the input to frequency-based
// tag clouds (paper Figures 1-2).
func (d *Dataset) TagFrequencies() []TagCount {
	counts := make(map[TagID]int)
	for _, a := range d.Actions {
		for _, t := range a.Tags {
			counts[t]++
		}
	}
	out := make([]TagCount, 0, len(counts))
	for id, n := range counts {
		out = append(out, TagCount{Tag: d.Vocab.Tag(id), ID: id, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// TagCount pairs a tag with an occurrence count.
type TagCount struct {
	Tag   string
	ID    TagID
	Count int
}
