// Package model defines the core data model of the TagDM framework: users,
// items, tags, tagging actions, and the attribute schemas that make groups
// of tagging actions "describable" (Das et al., PVLDB 2012, Section 2).
//
// All attribute values are dictionary-encoded: a Schema maps each attribute
// to a dense integer code space so that predicates, group keys and one-hot
// vector encodings are cheap. The string form of every value is retained for
// rendering descriptions such as {gender=male, state=new york}.
package model

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ValueCode is the dictionary-encoded form of an attribute value. Code 0 is
// reserved for "unknown"; real values start at 1.
type ValueCode int32

// Unknown is the value code used when an entity does not define a value for
// an attribute.
const Unknown ValueCode = 0

// Attribute is one named column of a Schema together with its value
// dictionary. The dictionary is safe for concurrent use: interning new
// values (Code) may race with rendering and predicate parsing when a
// server ingests entities while analyses read group descriptions.
type Attribute struct {
	Name string

	mu     sync.RWMutex
	values []string // index = int(code)-1
	codes  map[string]ValueCode
}

// NewAttribute returns an attribute with an empty dictionary.
func NewAttribute(name string) *Attribute {
	return &Attribute{Name: name, codes: make(map[string]ValueCode)}
}

// Code returns the code for value, adding it to the dictionary if absent.
func (a *Attribute) Code(value string) ValueCode {
	a.mu.Lock()
	defer a.mu.Unlock()
	if c, ok := a.codes[value]; ok {
		return c
	}
	a.values = append(a.values, value)
	c := ValueCode(len(a.values))
	a.codes[value] = c
	return c
}

// Lookup returns the code for value without modifying the dictionary. The
// second result reports whether the value is known.
func (a *Attribute) Lookup(value string) (ValueCode, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	c, ok := a.codes[value]
	return c, ok
}

// Value returns the string form of a code, or "?" for Unknown and
// out-of-range codes.
func (a *Attribute) Value(c ValueCode) string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if c <= 0 || int(c) > len(a.values) {
		return "?"
	}
	return a.values[c-1]
}

// Cardinality is the number of distinct values in the dictionary, not
// counting Unknown.
func (a *Attribute) Cardinality() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.values)
}

// Values returns a copy of the dictionary in code order.
func (a *Attribute) Values() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, len(a.values))
	copy(out, a.values)
	return out
}

// Schema is an ordered list of attributes describing users or items
// (S_U = <a1, a2, ...> in the paper).
type Schema struct {
	attrs []*Attribute
	index map[string]int
}

// NewSchema creates a schema with the given attribute names, in order.
func NewSchema(names ...string) *Schema {
	s := &Schema{index: make(map[string]int, len(names))}
	for _, n := range names {
		s.mustAdd(n)
	}
	return s
}

func (s *Schema) mustAdd(name string) {
	if _, dup := s.index[name]; dup {
		panic(fmt.Sprintf("model: duplicate attribute %q", name))
	}
	s.index[name] = len(s.attrs)
	s.attrs = append(s.attrs, NewAttribute(name))
}

// Len is the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) *Attribute { return s.attrs[i] }

// AttrByName returns the attribute with the given name, or nil.
func (s *Schema) AttrByName(name string) *Attribute {
	if i, ok := s.index[name]; ok {
		return s.attrs[i]
	}
	return nil
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Encode converts a name->value map into a code tuple in schema order.
// Missing attributes encode as Unknown. Unknown attribute names are an
// error so that typos do not silently drop predicates.
func (s *Schema) Encode(values map[string]string) ([]ValueCode, error) {
	tuple := make([]ValueCode, len(s.attrs))
	for name, v := range values {
		i, ok := s.index[name]
		if !ok {
			return nil, fmt.Errorf("model: schema has no attribute %q", name)
		}
		tuple[i] = s.attrs[i].Code(v)
	}
	return tuple, nil
}

// Decode renders a code tuple as a name=value description in schema order,
// skipping Unknown entries.
func (s *Schema) Decode(tuple []ValueCode) string {
	var parts []string
	for i, c := range tuple {
		if i >= len(s.attrs) {
			break
		}
		if c == Unknown {
			continue
		}
		parts = append(parts, s.attrs[i].Name+"="+s.attrs[i].Value(c))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// TotalCardinality is the sum of per-attribute cardinalities; it is the
// length of a one-hot encoding of a full tuple (used by the folding
// algorithms in Section 4.3 of the paper).
func (s *Schema) TotalCardinality() int {
	n := 0
	for _, a := range s.attrs {
		n += a.Cardinality()
	}
	return n
}

// OneHotOffsets returns, for each attribute, the starting offset of its
// value block in the schema's one-hot encoding.
func (s *Schema) OneHotOffsets() []int {
	offs := make([]int, len(s.attrs))
	n := 0
	for i, a := range s.attrs {
		offs[i] = n
		n += a.Cardinality()
	}
	return offs
}

// SortedValueCounts returns (value, count) pairs for attribute attr over the
// provided tuples, sorted by descending count. It is a convenience used by
// dataset summaries and tests.
func SortedValueCounts(attr *Attribute, column []ValueCode) []ValueCount {
	counts := make(map[ValueCode]int)
	for _, c := range column {
		if c != Unknown {
			counts[c]++
		}
	}
	out := make([]ValueCount, 0, len(counts))
	for c, n := range counts {
		out = append(out, ValueCount{Value: attr.Value(c), Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// ValueCount pairs an attribute value with an occurrence count.
type ValueCount struct {
	Value string
	Count int
}
