package model

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAttributeDictionary(t *testing.T) {
	a := NewAttribute("gender")
	m := a.Code("male")
	f := a.Code("female")
	if m == f {
		t.Fatalf("distinct values got same code %d", m)
	}
	if got := a.Code("male"); got != m {
		t.Fatalf("re-encoding male: got %d want %d", got, m)
	}
	if a.Value(m) != "male" || a.Value(f) != "female" {
		t.Fatalf("round trip failed: %q %q", a.Value(m), a.Value(f))
	}
	if a.Cardinality() != 2 {
		t.Fatalf("cardinality = %d, want 2", a.Cardinality())
	}
	if _, ok := a.Lookup("other"); ok {
		t.Fatal("Lookup of absent value reported ok")
	}
	if a.Value(Unknown) != "?" || a.Value(99) != "?" {
		t.Fatal("out-of-range codes should render as ?")
	}
}

func TestSchemaEncodeDecode(t *testing.T) {
	s := NewSchema("gender", "age", "state")
	tuple, err := s.Encode(map[string]string{"gender": "male", "state": "new york"})
	if err != nil {
		t.Fatal(err)
	}
	if tuple[1] != Unknown {
		t.Fatalf("missing attribute should encode Unknown, got %d", tuple[1])
	}
	desc := s.Decode(tuple)
	if desc != "{gender=male, state=new york}" {
		t.Fatalf("Decode = %q", desc)
	}
	if _, err := s.Encode(map[string]string{"zip": "75019"}); err == nil {
		t.Fatal("encoding unknown attribute should fail")
	}
}

func TestSchemaOneHotOffsets(t *testing.T) {
	s := NewSchema("a", "b")
	s.AttrByName("a").Code("x")
	s.AttrByName("a").Code("y")
	s.AttrByName("b").Code("z")
	if got := s.TotalCardinality(); got != 3 {
		t.Fatalf("TotalCardinality = %d, want 3", got)
	}
	offs := s.OneHotOffsets()
	if !reflect.DeepEqual(offs, []int{0, 2}) {
		t.Fatalf("OneHotOffsets = %v", offs)
	}
}

func TestSchemaDuplicateAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attribute should panic")
		}
	}()
	NewSchema("a", "a")
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	a := v.ID("drama")
	b := v.ID("comedy")
	if a == b {
		t.Fatal("distinct tags share id")
	}
	if v.ID("drama") != a {
		t.Fatal("interning not idempotent")
	}
	if v.Tag(a) != "drama" {
		t.Fatalf("Tag(%d) = %q", a, v.Tag(a))
	}
	if v.Size() != 2 {
		t.Fatalf("Size = %d", v.Size())
	}
	if v.Tag(-1) != "?" || v.Tag(10) != "?" {
		t.Fatal("out-of-range ids should render as ?")
	}
}

func newTestDataset(t *testing.T) *Dataset {
	t.Helper()
	d := NewDataset(NewSchema("gender", "age"), NewSchema("genre", "director"))
	for _, u := range []map[string]string{
		{"gender": "male", "age": "teen"},
		{"gender": "female", "age": "teen"},
		{"gender": "male", "age": "young"},
	} {
		if _, err := d.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range []map[string]string{
		{"genre": "action", "director": "cameron"},
		{"genre": "comedy", "director": "allen"},
	} {
		if _, err := d.AddItem(it); err != nil {
			t.Fatal(err)
		}
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.AddAction(0, 0, 4.0, "gun", "special effects"))
	must(d.AddAction(1, 0, 2.0, "violence", "gory"))
	must(d.AddAction(2, 1, 5.0, "drama", "friendship"))
	must(d.AddAction(0, 1, 3.5, "drama"))
	return d
}

func TestDatasetBuildAndValidate(t *testing.T) {
	d := newTestDataset(t)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Users != 3 || st.Items != 2 || st.Actions != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.VocabSize != 6 || st.DistinctUsed != 6 {
		t.Fatalf("vocab stats = %+v", st)
	}
	if st.TagOccur != 7 {
		t.Fatalf("TagOccur = %d, want 7", st.TagOccur)
	}
	if st.AvgTags != 7.0/4.0 {
		t.Fatalf("AvgTags = %v", st.AvgTags)
	}
}

func TestDatasetBadReferences(t *testing.T) {
	d := newTestDataset(t)
	if err := d.AddAction(99, 0, 0, "x"); err == nil {
		t.Fatal("unknown user accepted")
	}
	if err := d.AddAction(0, 99, 0, "x"); err == nil {
		t.Fatal("unknown item accepted")
	}
	if err := d.AddActionIDs(0, 0, 0, []TagID{999}); err == nil {
		t.Fatal("unknown tag id accepted")
	}
	// Corrupt an action directly and confirm Validate catches it.
	d.Actions[0].User = 42
	if err := d.Validate(); err == nil {
		t.Fatal("Validate missed dangling user reference")
	}
}

func TestTagFrequencies(t *testing.T) {
	d := newTestDataset(t)
	freqs := d.TagFrequencies()
	if len(freqs) != 6 {
		t.Fatalf("got %d distinct tags", len(freqs))
	}
	if freqs[0].Tag != "drama" || freqs[0].Count != 2 {
		t.Fatalf("top tag = %+v, want drama x2", freqs[0])
	}
	// Remaining tags all have count 1 and must be sorted by name.
	for i := 2; i < len(freqs); i++ {
		if freqs[i-1].Tag > freqs[i].Tag {
			t.Fatalf("ties not sorted by name: %q > %q", freqs[i-1].Tag, freqs[i].Tag)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := newTestDataset(t)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Users) != len(d.Users) || len(got.Items) != len(d.Items) || len(got.Actions) != len(d.Actions) {
		t.Fatalf("size mismatch after round trip: %+v", got.Stats())
	}
	for i := range d.Actions {
		want := make([]string, len(d.Actions[i].Tags))
		for j, id := range d.Actions[i].Tags {
			want[j] = d.Vocab.Tag(id)
		}
		have := make([]string, len(got.Actions[i].Tags))
		for j, id := range got.Actions[i].Tags {
			have[j] = got.Vocab.Tag(id)
		}
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("action %d tags: got %v want %v", i, have, want)
		}
		if got.Actions[i].Rating != d.Actions[i].Rating {
			t.Fatalf("action %d rating: got %v want %v", i, got.Actions[i].Rating, d.Actions[i].Rating)
		}
	}
	// User attribute strings must survive.
	if got.UserSchema.Decode(got.Users[0].Attrs) != d.UserSchema.Decode(d.Users[0].Attrs) {
		t.Fatal("user attrs changed across round trip")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString(`{"format":"other"}`)); err == nil {
		t.Fatal("wrong format accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`not json`)); err == nil {
		t.Fatal("non-JSON accepted")
	}
}

// Property: interning any sequence of strings through an attribute
// dictionary round-trips every value exactly.
func TestQuickAttributeRoundTrip(t *testing.T) {
	f := func(values []string) bool {
		a := NewAttribute("x")
		codes := make([]ValueCode, len(values))
		for i, v := range values {
			codes[i] = a.Code(v)
		}
		for i, v := range values {
			if a.Value(codes[i]) != v {
				return false
			}
			if c, ok := a.Lookup(v); !ok || c != codes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: equal strings get equal codes, distinct strings distinct codes.
func TestQuickAttributeInjective(t *testing.T) {
	f := func(a, b string) bool {
		attr := NewAttribute("x")
		ca := attr.Code(a)
		cb := attr.Code(b)
		return (a == b) == (ca == cb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJSONDictionaryStability(t *testing.T) {
	// Codes and tag ids must be identical after a round trip, so vector
	// encodings built before a save remain valid after a load.
	d := newTestDataset(t)
	// Intern an extra value out of tuple order to make the test sharper.
	d.UserSchema.AttrByName("gender").Code("nonbinary")
	d.Vocab.ID("never-used-tag")
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.UserSchema.Len(); i++ {
		a, b := d.UserSchema.Attr(i), got.UserSchema.Attr(i)
		if a.Cardinality() != b.Cardinality() {
			t.Fatalf("attr %d cardinality %d vs %d", i, a.Cardinality(), b.Cardinality())
		}
		for c := ValueCode(1); int(c) <= a.Cardinality(); c++ {
			if a.Value(c) != b.Value(c) {
				t.Fatalf("attr %d code %d: %q vs %q", i, c, a.Value(c), b.Value(c))
			}
		}
	}
	if d.Vocab.Size() != got.Vocab.Size() {
		t.Fatalf("vocab size %d vs %d", d.Vocab.Size(), got.Vocab.Size())
	}
	for id := TagID(0); int(id) < d.Vocab.Size(); id++ {
		if d.Vocab.Tag(id) != got.Vocab.Tag(id) {
			t.Fatalf("tag id %d: %q vs %q", id, d.Vocab.Tag(id), got.Vocab.Tag(id))
		}
	}
}
