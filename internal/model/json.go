package model

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The on-disk format is a small header object followed by one JSON object
// per line for users, items and actions. Attribute values are written as
// strings so files are self-describing and diffable; dictionaries are
// rebuilt on load.

type jsonHeader struct {
	Format    string   `json:"format"`
	UserAttrs []string `json:"user_attrs"`
	ItemAttrs []string `json:"item_attrs"`
	Users     int      `json:"users"`
	Items     int      `json:"items"`
	Actions   int      `json:"actions"`
	// Dictionaries pin code assignment across round trips: value code i+1
	// of attribute a is UserDicts[a][i] (resp. ItemDicts), and tag id i is
	// TagDict[i]. Older files without them re-intern in encounter order.
	UserDicts [][]string `json:"user_dicts,omitempty"`
	ItemDicts [][]string `json:"item_dicts,omitempty"`
	TagDict   []string   `json:"tag_dict,omitempty"`
}

type jsonEntity struct {
	Kind   string   `json:"k"` // "u", "i", or "a"
	Attrs  []string `json:"attrs,omitempty"`
	User   int32    `json:"u,omitempty"`
	Item   int32    `json:"i,omitempty"`
	Tags   []string `json:"tags,omitempty"`
	Rating float64  `json:"r,omitempty"`
}

const formatName = "tagdm-dataset-v1"

// WriteJSON streams the dataset to w in the line-oriented JSON format.
func (d *Dataset) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	hdr := jsonHeader{
		Format:    formatName,
		UserAttrs: d.UserSchema.Names(),
		ItemAttrs: d.ItemSchema.Names(),
		Users:     len(d.Users),
		Items:     len(d.Items),
		Actions:   len(d.Actions),
		UserDicts: schemaDicts(d.UserSchema),
		ItemDicts: schemaDicts(d.ItemSchema),
		TagDict:   vocabDict(d.Vocab),
	}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, u := range d.Users {
		e := jsonEntity{Kind: "u", Attrs: decodeTuple(d.UserSchema, u.Attrs)}
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	for _, it := range d.Items {
		e := jsonEntity{Kind: "i", Attrs: decodeTuple(d.ItemSchema, it.Attrs)}
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	for _, a := range d.Actions {
		tags := make([]string, len(a.Tags))
		for i, t := range a.Tags {
			tags[i] = d.Vocab.Tag(t)
		}
		e := jsonEntity{Kind: "a", User: a.User, Item: a.Item, Tags: tags, Rating: a.Rating}
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func schemaDicts(s *Schema) [][]string {
	out := make([][]string, s.Len())
	for i := 0; i < s.Len(); i++ {
		out[i] = s.Attr(i).Values()
	}
	return out
}

func vocabDict(v *Vocabulary) []string {
	out := make([]string, v.Size())
	for i := range out {
		out[i] = v.Tag(TagID(i))
	}
	return out
}

func decodeTuple(s *Schema, tuple []ValueCode) []string {
	out := make([]string, len(tuple))
	for i, c := range tuple {
		if c == Unknown {
			out[i] = ""
		} else {
			out[i] = s.Attr(i).Value(c)
		}
	}
	return out
}

// ReadJSON loads a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	var hdr jsonHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("model: reading header: %w", err)
	}
	if hdr.Format != formatName {
		return nil, fmt.Errorf("model: unexpected format %q", hdr.Format)
	}
	d := NewDataset(NewSchema(hdr.UserAttrs...), NewSchema(hdr.ItemAttrs...))
	// Pre-intern dictionaries so codes and tag ids match the writer's.
	for i, dict := range hdr.UserDicts {
		if i >= d.UserSchema.Len() {
			return nil, fmt.Errorf("model: user dictionary count exceeds schema width")
		}
		for _, v := range dict {
			d.UserSchema.Attr(i).Code(v)
		}
	}
	for i, dict := range hdr.ItemDicts {
		if i >= d.ItemSchema.Len() {
			return nil, fmt.Errorf("model: item dictionary count exceeds schema width")
		}
		for _, v := range dict {
			d.ItemSchema.Attr(i).Code(v)
		}
	}
	for _, tag := range hdr.TagDict {
		d.Vocab.ID(tag)
	}
	for {
		var e jsonEntity
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("model: reading entity: %w", err)
		}
		switch e.Kind {
		case "u":
			tuple, err := encodeTuple(d.UserSchema, e.Attrs)
			if err != nil {
				return nil, err
			}
			d.Users = append(d.Users, User{ID: int32(len(d.Users)), Attrs: tuple})
		case "i":
			tuple, err := encodeTuple(d.ItemSchema, e.Attrs)
			if err != nil {
				return nil, err
			}
			d.Items = append(d.Items, Item{ID: int32(len(d.Items)), Attrs: tuple})
		case "a":
			if err := d.AddAction(e.User, e.Item, e.Rating, e.Tags...); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("model: unknown entity kind %q", e.Kind)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func encodeTuple(s *Schema, attrs []string) ([]ValueCode, error) {
	if len(attrs) != s.Len() {
		return nil, fmt.Errorf("model: tuple width %d, schema width %d", len(attrs), s.Len())
	}
	tuple := make([]ValueCode, len(attrs))
	for i, v := range attrs {
		if v == "" {
			tuple[i] = Unknown
		} else {
			tuple[i] = s.Attr(i).Code(v)
		}
	}
	return tuple, nil
}
