// Package lsh implements the random-hyperplane (sign random projection)
// locality sensitive hashing scheme of Charikar (STOC 2002) used by the
// paper's SM-LSH family of algorithms (Section 4). Each of d' hash
// functions is the sign of a dot product with a random Gaussian vector;
// the collision probability of two vectors is 1 - theta/pi (Theorem 2).
//
// Unlike classical LSH usage (nearest-neighbor lookups for a query point),
// the TagDM algorithms enumerate the buckets themselves and rank them by a
// scoring function, so the index exposes its buckets directly.
package lsh

import (
	"fmt"
	"math"
	"math/rand"

	"tagdm/internal/vec"
)

// Index is a set of l hash tables over n input vectors, each table keyed by
// a d'-bit signature.
type Index struct {
	d      int // input dimensionality
	dprime int // hyperplanes per table (signature bits)
	tables []table
	n      int
}

type table struct {
	planes [][]float64      // dprime rows of d Gaussian coordinates
	bucket map[uint64][]int // signature -> vector ids
}

// Params configures index construction.
type Params struct {
	// DPrime is the number of hyperplanes (signature bits) per table.
	// Must be in [1, 64]; the paper starts at 10.
	DPrime int
	// L is the number of independent hash tables (the paper uses 1).
	L int
	// Seed drives hyperplane generation.
	Seed int64
}

// Build hashes all vectors into l tables of d'-bit signatures.
// All vectors must share the same dimensionality.
func Build(vectors [][]float64, p Params) (*Index, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("lsh: no vectors")
	}
	if p.DPrime < 1 || p.DPrime > 64 {
		return nil, fmt.Errorf("lsh: DPrime %d out of [1, 64]", p.DPrime)
	}
	if p.L < 1 {
		return nil, fmt.Errorf("lsh: L must be >= 1, got %d", p.L)
	}
	d := len(vectors[0])
	for i, v := range vectors {
		if len(v) != d {
			return nil, fmt.Errorf("lsh: vector %d has dim %d, want %d", i, len(v), d)
		}
	}
	rng := rand.New(rand.NewSource(p.Seed))
	idx := &Index{d: d, dprime: p.DPrime, n: len(vectors)}
	idx.tables = make([]table, p.L)
	for t := range idx.tables {
		planes := make([][]float64, p.DPrime)
		for h := range planes {
			row := make([]float64, d)
			for c := range row {
				row[c] = rng.NormFloat64()
			}
			planes[h] = row
		}
		tb := table{planes: planes, bucket: make(map[uint64][]int)}
		for id, v := range vectors {
			sig := signatureOf(planes, v)
			tb.bucket[sig] = append(tb.bucket[sig], id)
		}
		idx.tables[t] = tb
	}
	return idx, nil
}

// signatureOf computes the d'-bit signature of v under the given planes:
// bit h is 1 iff planes[h] . v >= 0.
func signatureOf(planes [][]float64, v []float64) uint64 {
	var sig uint64
	for h, plane := range planes {
		if vec.Dot(plane, v) >= 0 {
			sig |= 1 << uint(h)
		}
	}
	return sig
}

// Signature returns v's signature in table t (exported for tests and for
// Query).
func (x *Index) Signature(t int, v []float64) uint64 {
	return signatureOf(x.tables[t].planes, v)
}

// Bucket is one hash bucket: the ids of the vectors sharing a signature in
// one table.
type Bucket struct {
	Table     int
	Signature uint64
	IDs       []int
}

// Buckets returns every non-empty bucket of every table. Order is
// deterministic given deterministic map iteration is not guaranteed, so
// buckets are keyed by (table, signature) and callers needing determinism
// should sort; Rank below does.
func (x *Index) Buckets() []Bucket {
	var out []Bucket
	for t := range x.tables {
		for sig, ids := range x.tables[t].bucket {
			out = append(out, Bucket{Table: t, Signature: sig, IDs: ids})
		}
	}
	return out
}

// NumBuckets returns the total bucket count across tables.
func (x *Index) NumBuckets() int {
	n := 0
	for t := range x.tables {
		n += len(x.tables[t].bucket)
	}
	return n
}

// Query returns the ids co-hashed with v in any table (the classical
// approximate nearest neighbor candidate set), excluding duplicates.
func (x *Index) Query(v []float64) []int {
	if len(v) != x.d {
		return nil
	}
	seen := make(map[int]struct{})
	var out []int
	for t := range x.tables {
		sig := signatureOf(x.tables[t].planes, v)
		for _, id := range x.tables[t].bucket[sig] {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	return out
}

// CollisionProbability returns the theoretical single-hyperplane collision
// probability of two vectors, 1 - theta/pi (Theorem 2), exposed for tests
// and diagnostics.
func CollisionProbability(a, b []float64) float64 {
	return 1 - vec.Angle(a, b)/math.Pi
}
