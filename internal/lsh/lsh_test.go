package lsh

import (
	"math"
	"math/rand"
	"testing"
)

// clusterVectors makes two tight clusters of unit vectors around opposite
// directions plus the cluster assignment of each vector.
func clusterVectors(n, d int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centerA := make([]float64, d)
	centerB := make([]float64, d)
	for i := 0; i < d; i++ {
		centerA[i] = rng.NormFloat64()
		centerB[i] = -centerA[i]
	}
	vectors := make([][]float64, n)
	labels := make([]int, n)
	for i := range vectors {
		c := centerA
		labels[i] = 0
		if i%2 == 1 {
			c = centerB
			labels[i] = 1
		}
		v := make([]float64, d)
		for j := range v {
			v[j] = c[j] + 0.05*rng.NormFloat64()
		}
		vectors[i] = v
	}
	return vectors, labels
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Params{DPrime: 8, L: 1}); err == nil {
		t.Fatal("empty input accepted")
	}
	v := [][]float64{{1, 2}}
	if _, err := Build(v, Params{DPrime: 0, L: 1}); err == nil {
		t.Fatal("DPrime 0 accepted")
	}
	if _, err := Build(v, Params{DPrime: 65, L: 1}); err == nil {
		t.Fatal("DPrime 65 accepted")
	}
	if _, err := Build(v, Params{DPrime: 8, L: 0}); err == nil {
		t.Fatal("L 0 accepted")
	}
	if _, err := Build([][]float64{{1, 2}, {1}}, Params{DPrime: 8, L: 1}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestBucketsPartitionInput(t *testing.T) {
	vectors, _ := clusterVectors(100, 10, 3)
	idx, err := Build(vectors, Params{DPrime: 6, L: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for _, b := range idx.Buckets() {
		for _, id := range b.IDs {
			seen[id]++
		}
	}
	if len(seen) != 100 {
		t.Fatalf("buckets cover %d of 100 vectors", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("vector %d appears in %d buckets of one table", id, n)
		}
	}
	if idx.NumBuckets() != len(idx.Buckets()) {
		t.Fatal("NumBuckets inconsistent")
	}
}

func TestMultipleTablesMultiplyBuckets(t *testing.T) {
	vectors, _ := clusterVectors(60, 8, 5)
	idx, err := Build(vectors, Params{DPrime: 4, L: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Each table partitions all inputs, so total membership = 3 * 60.
	total := 0
	for _, b := range idx.Buckets() {
		if b.Table < 0 || b.Table > 2 {
			t.Fatalf("bad table %d", b.Table)
		}
		total += len(b.IDs)
	}
	if total != 180 {
		t.Fatalf("total membership = %d, want 180", total)
	}
}

func TestSimilarVectorsCollide(t *testing.T) {
	vectors, labels := clusterVectors(200, 12, 7)
	idx, err := Build(vectors, Params{DPrime: 8, L: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// With two antipodal tight clusters and 8 hyperplanes, same-cluster
	// vectors should overwhelmingly share a bucket and cross-cluster
	// vectors should not.
	sameOK, crossBad := 0, 0
	samePairs, crossPairs := 0, 0
	for _, b := range idx.Buckets() {
		for i := 0; i < len(b.IDs); i++ {
			for j := i + 1; j < len(b.IDs); j++ {
				if labels[b.IDs[i]] == labels[b.IDs[j]] {
					sameOK++
				} else {
					crossBad++
				}
			}
		}
	}
	for i := 0; i < len(labels); i++ {
		for j := i + 1; j < len(labels); j++ {
			if labels[i] == labels[j] {
				samePairs++
			} else {
				crossPairs++
			}
		}
	}
	if crossBad > 0 {
		t.Fatalf("%d cross-cluster pairs share a bucket", crossBad)
	}
	if float64(sameOK) < 0.5*float64(samePairs) {
		t.Fatalf("only %d/%d same-cluster pairs collided", sameOK, samePairs)
	}
}

func TestQuery(t *testing.T) {
	vectors, labels := clusterVectors(100, 10, 11)
	idx, err := Build(vectors, Params{DPrime: 6, L: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Query with a fresh vector near cluster 0.
	q := make([]float64, 10)
	copy(q, vectors[0])
	got := idx.Query(q)
	if len(got) == 0 {
		t.Fatal("query returned nothing")
	}
	for _, id := range got {
		if labels[id] != labels[0] {
			t.Fatalf("query returned cross-cluster vector %d", id)
		}
	}
	if idx.Query([]float64{1}) != nil {
		t.Fatal("dimension mismatch should return nil")
	}
}

func TestCollisionProbabilityTheorem(t *testing.T) {
	// Empirically estimate P[h(a)=h(b)] over many random hyperplanes and
	// compare with 1 - theta/pi (Theorem 2 of the paper).
	a := []float64{1, 0, 0}
	b := []float64{1, 1, 0} // 45 degrees
	want := CollisionProbability(a, b)
	if math.Abs(want-(1-0.25)) > 1e-9 {
		t.Fatalf("analytic collision prob = %v, want 0.75", want)
	}
	rng := rand.New(rand.NewSource(13))
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		plane := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		sa := dot(plane, a) >= 0
		sb := dot(plane, b) >= 0
		if sa == sb {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("empirical collision prob %v, analytic %v", got, want)
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestDeterministicWithSeed(t *testing.T) {
	vectors, _ := clusterVectors(50, 6, 19)
	a, err := Build(vectors, Params{DPrime: 5, L: 2, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(vectors, Params{DPrime: 5, L: 2, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vectors {
		for tbl := 0; tbl < 2; tbl++ {
			if a.Signature(tbl, v) != b.Signature(tbl, v) {
				t.Fatalf("vector %d table %d: signatures differ across builds", i, tbl)
			}
		}
	}
}

func TestLowerDPrimeCoarsensPartition(t *testing.T) {
	vectors, _ := clusterVectors(200, 10, 23)
	fine, err := Build(vectors, Params{DPrime: 12, L: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Build(vectors, Params{DPrime: 2, L: 1, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.NumBuckets() > fine.NumBuckets() {
		t.Fatalf("coarse index has more buckets (%d) than fine (%d)",
			coarse.NumBuckets(), fine.NumBuckets())
	}
}
