package lda

import (
	"math"
	"math/rand"
	"testing"
)

// synthCorpus builds a corpus from two well-separated latent topics: words
// [0, half) belong to topic A, words [half, V) to topic B. Each document
// draws from exactly one topic.
func synthCorpus(nDocs, docLen, vocab int, seed int64) (Corpus, []int) {
	rng := rand.New(rand.NewSource(seed))
	half := vocab / 2
	docs := make([]Document, nDocs)
	labels := make([]int, nDocs)
	for d := range docs {
		topic := d % 2
		labels[d] = topic
		doc := make(Document, docLen)
		for i := range doc {
			if topic == 0 {
				doc[i] = rng.Intn(half)
			} else {
				doc[i] = half + rng.Intn(vocab-half)
			}
		}
		docs[d] = doc
	}
	return Corpus{Docs: docs, VocabSize: vocab}, labels
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(Corpus{VocabSize: 10}, Config{Topics: 0}); err == nil {
		t.Fatal("Topics=0 accepted")
	}
	if _, err := Train(Corpus{VocabSize: 0}, Config{Topics: 2}); err == nil {
		t.Fatal("VocabSize=0 accepted")
	}
	if _, err := Train(Corpus{Docs: []Document{{99}}, VocabSize: 10}, Config{Topics: 2, Seed: 1}); err == nil {
		t.Fatal("out-of-vocab word accepted")
	}
}

func TestThetaIsDistribution(t *testing.T) {
	corpus, _ := synthCorpus(20, 30, 40, 1)
	m, err := Train(corpus, Config{Topics: 4, Iterations: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for d := range corpus.Docs {
		theta := m.DocTheta(d)
		var sum float64
		for _, p := range theta {
			if p < 0 {
				t.Fatalf("doc %d has negative prob %v", d, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("doc %d theta sums to %v", d, sum)
		}
	}
}

func TestRecoversSeparatedTopics(t *testing.T) {
	corpus, labels := synthCorpus(40, 50, 60, 42)
	m, err := Train(corpus, Config{Topics: 2, Iterations: 300, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Same-label documents must be closer to each other (cosine of theta)
	// than different-label documents on average.
	cos := func(a, b []float64) float64 {
		var dot, na, nb float64
		for i := range a {
			dot += a[i] * b[i]
			na += a[i] * a[i]
			nb += b[i] * b[i]
		}
		return dot / math.Sqrt(na*nb)
	}
	var same, diff float64
	var nSame, nDiff int
	for i := 0; i < len(labels); i++ {
		for j := i + 1; j < len(labels); j++ {
			c := cos(m.DocTheta(i), m.DocTheta(j))
			if labels[i] == labels[j] {
				same += c
				nSame++
			} else {
				diff += c
				nDiff++
			}
		}
	}
	same /= float64(nSame)
	diff /= float64(nDiff)
	if same <= diff+0.2 {
		t.Fatalf("LDA failed to separate topics: same=%v diff=%v", same, diff)
	}
}

func TestTopicWordProbNormalized(t *testing.T) {
	corpus, _ := synthCorpus(10, 20, 30, 3)
	m, err := Train(corpus, Config{Topics: 3, Iterations: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < m.K; k++ {
		var sum float64
		for w := 0; w < m.VocabSize; w++ {
			sum += m.TopicWordProb(k, w)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("topic %d phi sums to %v", k, sum)
		}
	}
}

func TestTopWords(t *testing.T) {
	corpus, _ := synthCorpus(40, 50, 20, 9)
	m, err := Train(corpus, Config{Topics: 2, Iterations: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		top := m.TopWords(k, 5)
		if len(top) != 5 {
			t.Fatalf("TopWords returned %d", len(top))
		}
		// All top words of one recovered topic must come from the same
		// latent half of the vocabulary.
		firstHalf := top[0] < 10
		for _, w := range top {
			if (w < 10) != firstHalf {
				t.Fatalf("topic %d mixes vocabulary halves: %v", k, top)
			}
		}
	}
	if got := m.TopWords(0, 100); len(got) != m.VocabSize {
		t.Fatalf("TopWords over-request returned %d", len(got))
	}
}

func TestInfer(t *testing.T) {
	corpus, _ := synthCorpus(40, 50, 60, 17)
	m, err := Train(corpus, Config{Topics: 2, Iterations: 300, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// Determine which model topic corresponds to vocabulary half A by
	// checking topic-word mass.
	var massA0 float64
	for w := 0; w < 30; w++ {
		massA0 += m.TopicWordProb(0, w)
	}
	topicA := 0
	if massA0 < 0.5 {
		topicA = 1
	}
	docA := Document{1, 2, 3, 4, 5, 6, 7, 8}
	theta := m.Infer(docA, 50, 99)
	var sum float64
	for _, p := range theta {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("inferred theta sums to %v", sum)
	}
	if theta[topicA] < 0.7 {
		t.Fatalf("half-A document got theta[%d]=%v", topicA, theta[topicA])
	}
}

func TestInferEmptyAndUnseen(t *testing.T) {
	corpus, _ := synthCorpus(10, 20, 30, 5)
	m, err := Train(corpus, Config{Topics: 3, Iterations: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	theta := m.Infer(nil, 10, 1)
	for _, p := range theta {
		if math.Abs(p-1.0/3.0) > 1e-9 {
			t.Fatalf("empty doc should be uniform, got %v", theta)
		}
	}
	// Out-of-vocab ids are skipped, not a crash.
	theta2 := m.Infer(Document{999, -5, 1}, 10, 1)
	var sum float64
	for _, p := range theta2 {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("theta with unseen words sums to %v", sum)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	corpus, _ := synthCorpus(10, 20, 30, 7)
	m1, err := Train(corpus, Config{Topics: 3, Iterations: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(corpus, Config{Topics: 3, Iterations: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for d := range corpus.Docs {
		a, b := m1.DocTheta(d), m2.DocTheta(d)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("doc %d topic %d: %v != %v", d, k, a[k], b[k])
			}
		}
	}
}
