// Package lda implements Latent Dirichlet Allocation (Blei, Ng, Jordan 2003)
// with a collapsed Gibbs sampler, used by the TagDM framework to summarize a
// group's tag multiset into a topic-distribution signature (paper Section
// 2.1.2; the experiments use 25 global topics).
//
// The implementation is deliberately self-contained: a corpus is a slice of
// documents, each a slice of word ids; Train burns in the sampler and
// freezes topic-word statistics; Infer folds a new document in against the
// frozen statistics, which is how per-group signatures are produced after
// fitting the model on the whole dataset.
package lda

import (
	"errors"
	"math/rand"
)

// Document is a bag of word ids, with repetitions.
type Document []int

// Corpus is a collection of documents over a vocabulary of VocabSize words.
type Corpus struct {
	Docs      []Document
	VocabSize int
}

// Config controls training.
type Config struct {
	// Topics is K, the number of latent topics.
	Topics int
	// Alpha is the symmetric document-topic Dirichlet prior (default 0.1,
	// suited to short documents such as group tag multisets).
	Alpha float64
	// Beta is the symmetric topic-word Dirichlet prior (default 0.01).
	Beta float64
	// Iterations is the number of Gibbs sweeps (default 200).
	Iterations int
	// Seed makes training deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.1
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.Iterations == 0 {
		c.Iterations = 200
	}
	return c
}

// Model is a trained LDA model: frozen topic-word counts plus priors.
type Model struct {
	K         int
	VocabSize int
	Alpha     float64
	Beta      float64

	// topicWord[k][w] = count of word w assigned to topic k at the end of
	// training. topicTotals[k] = sum over w.
	topicWord   [][]int
	topicTotals []int

	// docTopic distributions of the training documents (theta), row-major
	// K floats per document.
	docTheta [][]float64
}

// Train runs the collapsed Gibbs sampler on corpus and returns the model.
func Train(corpus Corpus, cfg Config) (*Model, error) {
	if cfg.Topics < 1 {
		return nil, errors.New("lda: Topics must be >= 1")
	}
	if corpus.VocabSize < 1 {
		return nil, errors.New("lda: VocabSize must be >= 1")
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	K, V := cfg.Topics, corpus.VocabSize

	m := &Model{K: K, VocabSize: V, Alpha: cfg.Alpha, Beta: cfg.Beta}
	m.topicWord = make([][]int, K)
	for k := range m.topicWord {
		m.topicWord[k] = make([]int, V)
	}
	m.topicTotals = make([]int, K)

	nDocs := len(corpus.Docs)
	docTopic := make([][]int, nDocs)
	docLens := make([]int, nDocs)
	assign := make([][]int, nDocs) // topic of each token

	// Random initialization.
	for d, doc := range corpus.Docs {
		docTopic[d] = make([]int, K)
		assign[d] = make([]int, len(doc))
		docLens[d] = len(doc)
		for i, w := range doc {
			if w < 0 || w >= V {
				return nil, errors.New("lda: word id out of vocabulary range")
			}
			k := rng.Intn(K)
			assign[d][i] = k
			docTopic[d][k]++
			m.topicWord[k][w]++
			m.topicTotals[k]++
		}
	}

	probs := make([]float64, K)
	vBeta := float64(V) * cfg.Beta
	for it := 0; it < cfg.Iterations; it++ {
		for d, doc := range corpus.Docs {
			for i, w := range doc {
				old := assign[d][i]
				docTopic[d][old]--
				m.topicWord[old][w]--
				m.topicTotals[old]--

				var sum float64
				for k := 0; k < K; k++ {
					p := (float64(docTopic[d][k]) + cfg.Alpha) *
						(float64(m.topicWord[k][w]) + cfg.Beta) /
						(float64(m.topicTotals[k]) + vBeta)
					probs[k] = p
					sum += p
				}
				k := sample(rng, probs, sum)
				assign[d][i] = k
				docTopic[d][k]++
				m.topicWord[k][w]++
				m.topicTotals[k]++
			}
		}
	}

	// Freeze per-document theta.
	m.docTheta = make([][]float64, nDocs)
	for d := range corpus.Docs {
		theta := make([]float64, K)
		denom := float64(docLens[d]) + float64(K)*cfg.Alpha
		for k := 0; k < K; k++ {
			theta[k] = (float64(docTopic[d][k]) + cfg.Alpha) / denom
		}
		m.docTheta[d] = theta
	}
	return m, nil
}

// sample draws an index proportionally to probs (which sum to sum).
func sample(rng *rand.Rand, probs []float64, sum float64) int {
	u := rng.Float64() * sum
	var acc float64
	for k, p := range probs {
		acc += p
		if u < acc {
			return k
		}
	}
	return len(probs) - 1
}

// DocTheta returns the trained topic distribution of training document d.
func (m *Model) DocTheta(d int) []float64 {
	out := make([]float64, m.K)
	copy(out, m.docTheta[d])
	return out
}

// TopicWordProb returns phi[k][w], the smoothed probability of word w under
// topic k.
func (m *Model) TopicWordProb(k, w int) float64 {
	return (float64(m.topicWord[k][w]) + m.Beta) /
		(float64(m.topicTotals[k]) + float64(m.VocabSize)*m.Beta)
}

// TopWords returns the n most probable word ids of topic k, most probable
// first. Useful for labeling topics in reports.
func (m *Model) TopWords(k, n int) []int {
	type wp struct {
		w int
		p float64
	}
	all := make([]wp, m.VocabSize)
	for w := 0; w < m.VocabSize; w++ {
		all[w] = wp{w, m.TopicWordProb(k, w)}
	}
	// Partial selection sort: n is small.
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].p > all[best].p {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
		out[i] = all[i].w
	}
	return out
}

// Infer folds doc into the frozen model with a short Gibbs run and returns
// its topic distribution theta (length K, sums to 1). This is how group tag
// signatures are produced: the group's tag multiset is one document.
func (m *Model) Infer(doc Document, iterations int, seed int64) []float64 {
	theta := make([]float64, m.K)
	if len(doc) == 0 {
		// Uniform distribution for an empty tag set: no evidence.
		for k := range theta {
			theta[k] = 1.0 / float64(m.K)
		}
		return theta
	}
	if iterations <= 0 {
		iterations = 30
	}
	rng := rand.New(rand.NewSource(seed))
	docTopic := make([]int, m.K)
	assign := make([]int, len(doc))
	for i := range doc {
		k := rng.Intn(m.K)
		assign[i] = k
		docTopic[k]++
	}
	probs := make([]float64, m.K)
	vBeta := float64(m.VocabSize) * m.Beta
	for it := 0; it < iterations; it++ {
		for i, w := range doc {
			if w < 0 || w >= m.VocabSize {
				continue // unseen word: contributes nothing
			}
			old := assign[i]
			docTopic[old]--
			var sum float64
			for k := 0; k < m.K; k++ {
				p := (float64(docTopic[k]) + m.Alpha) *
					(float64(m.topicWord[k][w]) + m.Beta) /
					(float64(m.topicTotals[k]) + vBeta)
				probs[k] = p
				sum += p
			}
			k := sample(rng, probs, sum)
			assign[i] = k
			docTopic[k]++
		}
	}
	denom := float64(len(doc)) + float64(m.K)*m.Alpha
	for k := 0; k < m.K; k++ {
		theta[k] = (float64(docTopic[k]) + m.Alpha) / denom
	}
	return theta
}
