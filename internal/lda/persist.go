package lda

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Training is the expensive step of the signature pipeline, so models can
// be persisted and reloaded: Save writes the frozen topic-word statistics
// and priors with encoding/gob; Load restores a Model whose Infer behaves
// identically. Per-document thetas of the training corpus are included so
// DocTheta keeps working after a round trip.

// snapshot is the gob-encoded form of a Model (gob needs exported fields).
type snapshot struct {
	K           int
	VocabSize   int
	Alpha, Beta float64
	TopicWord   [][]int
	TopicTotals []int
	DocTheta    [][]float64
}

const snapshotMagic = "tagdm-lda-v1"

// Save writes the model to w.
func (m *Model) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(snapshotMagic); err != nil {
		return fmt.Errorf("lda: writing header: %w", err)
	}
	s := snapshot{
		K:           m.K,
		VocabSize:   m.VocabSize,
		Alpha:       m.Alpha,
		Beta:        m.Beta,
		TopicWord:   m.topicWord,
		TopicTotals: m.topicTotals,
		DocTheta:    m.docTheta,
	}
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("lda: encoding model: %w", err)
	}
	return nil
}

// Load restores a model written by Save.
func Load(r io.Reader) (*Model, error) {
	dec := gob.NewDecoder(r)
	var magic string
	if err := dec.Decode(&magic); err != nil {
		return nil, fmt.Errorf("lda: reading header: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("lda: unexpected header %q", magic)
	}
	var s snapshot
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("lda: decoding model: %w", err)
	}
	if s.K < 1 || s.VocabSize < 1 || len(s.TopicWord) != s.K || len(s.TopicTotals) != s.K {
		return nil, fmt.Errorf("lda: corrupt snapshot (K=%d, V=%d)", s.K, s.VocabSize)
	}
	for k, row := range s.TopicWord {
		if len(row) != s.VocabSize {
			return nil, fmt.Errorf("lda: corrupt snapshot: topic %d has %d words", k, len(row))
		}
	}
	return &Model{
		K:           s.K,
		VocabSize:   s.VocabSize,
		Alpha:       s.Alpha,
		Beta:        s.Beta,
		topicWord:   s.TopicWord,
		topicTotals: s.TopicTotals,
		docTheta:    s.DocTheta,
	}, nil
}
