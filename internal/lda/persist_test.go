package lda

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	corpus, _ := synthCorpus(20, 30, 40, 21)
	m, err := Train(corpus, Config{Topics: 3, Iterations: 60, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != m.K || got.VocabSize != m.VocabSize || got.Alpha != m.Alpha || got.Beta != m.Beta {
		t.Fatalf("header mismatch: %+v", got)
	}
	// Topic-word probabilities identical.
	for k := 0; k < m.K; k++ {
		for w := 0; w < m.VocabSize; w++ {
			if got.TopicWordProb(k, w) != m.TopicWordProb(k, w) {
				t.Fatalf("phi[%d][%d] differs", k, w)
			}
		}
	}
	// Training thetas survive.
	for d := range corpus.Docs {
		a, b := m.DocTheta(d), got.DocTheta(d)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("doc %d theta differs", d)
			}
		}
	}
	// Inference with the same seed is identical.
	doc := Document{1, 2, 3, 4}
	x := m.Infer(doc, 20, 5)
	y := got.Infer(doc, 20, 5)
	for k := range x {
		if x[k] != y[k] {
			t.Fatal("inference differs after round trip")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not gob")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Wrong magic.
	var buf bytes.Buffer
	corpus, _ := synthCorpus(5, 10, 20, 1)
	m, err := Train(corpus, Config{Topics: 2, Iterations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the magic string bytes (gob encodes the string contents
	// near the start).
	idx := bytes.Index(raw, []byte("tagdm-lda-v1"))
	if idx < 0 {
		t.Fatal("magic not found in encoding")
	}
	raw[idx] = 'X'
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted magic accepted")
	}
}
