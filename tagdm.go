// Package tagdm is a Go implementation of the Tagging Behavior Dual Mining
// (TagDM) framework of Das, Thirumuruganathan, Amer-Yahia, Das and Yu,
// "Who Tags What? An Analysis Framework", PVLDB 5(11), 2012.
//
// TagDM analyzes the tagging behavior of user populations over item
// collections: it finds sets of describable tagging-action groups (e.g.
// {gender=male, age=teen, genre=action}) that satisfy similarity or
// diversity constraints on the user and item dimensions while maximizing a
// similarity or diversity objective on the tag dimension — questions like
// "which similar user sub-populations disagree most in how they tag the
// same kind of movie?".
//
// The package exposes the whole pipeline:
//
//	ds := tagdm.NewDataset(tagdm.NewSchema("gender", "age"), tagdm.NewSchema("genre"))
//	// ... populate users, items and tagging actions ...
//	a, err := tagdm.NewAnalysis(ds, tagdm.Options{})
//	spec, _ := tagdm.Problem(6, 3, 100, 0.5, 0.5) // Table 1, Problem 6
//	res, err := a.Solve(spec)
//
// Algorithms: the exact brute force, the LSH-based SM-LSH-Fi/Fo similarity
// maximizers, and the facility-dispersion-based DV-FDP-Fi/Fo diversity
// maximizers, all per the paper. Tag signatures can be frequency, tf-idf,
// or LDA topic distributions (the paper's configuration).
package tagdm

import (
	"context"
	"fmt"
	"io"

	"tagdm/internal/core"
	"tagdm/internal/datagen"
	"tagdm/internal/groups"
	"tagdm/internal/mining"
	"tagdm/internal/model"
	"tagdm/internal/query"
	"tagdm/internal/recommend"
	"tagdm/internal/signature"
	"tagdm/internal/store"
)

// Re-exported data model types.
type (
	// Dataset is the triple <U, I, T> plus the tagging actions G.
	Dataset = model.Dataset
	// Schema is an ordered attribute list for users or items.
	Schema = model.Schema
	// TaggingAction is one <user, item, tags> triple.
	TaggingAction = model.TaggingAction
	// TagID identifies a tag in a dataset vocabulary.
	TagID = model.TagID
	// ValueCode is a dictionary-encoded attribute value.
	ValueCode = model.ValueCode
)

// Re-exported engine types.
type (
	// ProblemSpec is a concrete TagDM problem instance <G, C, O>.
	ProblemSpec = core.ProblemSpec
	// Constraint is one hard constraint of a spec.
	Constraint = core.Constraint
	// Objective is one optimization criterion of a spec.
	Objective = core.Objective
	// Result is an algorithm outcome.
	Result = core.Result
	// LSHOptions tunes the SM-LSH family.
	LSHOptions = core.LSHOptions
	// FDPOptions tunes the DV-FDP family.
	FDPOptions = core.FDPOptions
	// ExactOptions tunes the brute-force baseline.
	ExactOptions = core.ExactOptions
	// Summarizer converts a group's tag multiset into a signature vector;
	// implement it to plug in a custom summarization method.
	Summarizer = signature.Summarizer
	// Signature is a group tag signature vector.
	Signature = signature.Signature
	// Store is the columnar tagging-action store a Summarizer reads from.
	Store = store.Store
	// Group is one describable tagging action group.
	Group = groups.Group
	// Dimension is a tagging behavior dimension (users, items, tags).
	Dimension = mining.Dimension
	// Measure is a dual mining criterion (similarity or diversity).
	Measure = mining.Measure
)

// Dimensions and measures for building custom ProblemSpecs.
const (
	// DimUsers is the user dimension.
	DimUsers = mining.Users
	// DimItems is the item dimension.
	DimItems = mining.Items
	// DimTags is the tag dimension.
	DimTags = mining.Tags
	// MeasureSimilarity is the similarity criterion.
	MeasureSimilarity = mining.Similarity
	// MeasureDiversity is the diversity criterion.
	MeasureDiversity = mining.Diversity
)

// GroupTagBag returns the multiset of tags appearing in a group's tagging
// actions; custom Summarizer implementations build signatures from it.
func GroupTagBag(s *Store, g *Group) map[TagID]int { return groups.TagBag(s, g) }

// PairFunc is a pair-wise comparison function Fp(g1, g2) in [0, 1]; plug
// custom measures into an Analysis with SetMeasure.
type PairFunc = mining.PairFunc

// ValueSimilarity scores two attribute value strings in [0, 1] for
// domain-aware structural comparison.
type ValueSimilarity = mining.ValueSimilarity

// Constraint handling modes for the approximate algorithms.
const (
	// Filter post-processes candidates for constraint satisfiability.
	Filter = core.Filter
	// Fold folds constraints into the search itself.
	Fold = core.Fold
)

// NewSchema creates an attribute schema.
func NewSchema(names ...string) *Schema { return model.NewSchema(names...) }

// NewDataset creates an empty dataset over the two schemas.
func NewDataset(userSchema, itemSchema *Schema) *Dataset {
	return model.NewDataset(userSchema, itemSchema)
}

// Problem returns Table 1's problem instance id (1..6): at most k groups,
// support >= p, user threshold q, item threshold r, optimizing the tag
// dimension.
func Problem(id, k, p int, q, r float64) (ProblemSpec, error) {
	return core.PaperProblem(id, k, p, q, r)
}

// AllProblems enumerates the framework's distinct optimizable problem
// instances (see core.AllRoles).
func AllProblems() []ProblemSpec { return core.AllRoles() }

// SignatureMethod selects how group tag signatures are produced.
type SignatureMethod uint8

// Available signature methods.
const (
	// SignatureLDA uses an LDA topic model (the paper's configuration).
	SignatureLDA SignatureMethod = iota
	// SignatureTFIDF uses tf-idf weights over the tag vocabulary.
	SignatureTFIDF
	// SignatureFrequency uses raw tag frequencies.
	SignatureFrequency
)

// Options configures NewAnalysis.
type Options struct {
	// MinGroupTuples drops groups smaller than this (default 5, as in the
	// paper).
	MinGroupTuples int
	// Signatures selects the summarization method (default SignatureLDA).
	Signatures SignatureMethod
	// CustomSummarizer overrides Signatures with a caller-provided
	// implementation when non-nil.
	CustomSummarizer Summarizer
	// Topics is the LDA topic count (default 25).
	Topics int
	// LDAIterations is the Gibbs sweep count (default 150).
	LDAIterations int
	// Within restricts the analysis to tagging actions matching this
	// conjunctive attribute filter (e.g. {"gender": "male"}), mirroring
	// the paper's query-scoped analyses. Nil analyzes everything.
	Within map[string]string
	// Seed drives LDA training and LSH hyperplanes.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MinGroupTuples == 0 {
		o.MinGroupTuples = 5
	}
	if o.Topics == 0 {
		o.Topics = 25
	}
	if o.LDAIterations == 0 {
		o.LDAIterations = 150
	}
	return o
}

// Analysis is a prepared TagDM pipeline over one dataset: store, groups,
// signatures, and engine.
type Analysis struct {
	opts    Options
	store   *store.Store
	groups  []*groups.Group
	sigs    []signature.Signature
	engine  *core.Engine
	scopedN int // tagging actions within the Options.Within scope
}

// NewAnalysis builds the pipeline: columnar store, describable group
// enumeration, tag signatures, and the mining engine.
func NewAnalysis(ds *Dataset, opts Options) (*Analysis, error) {
	opts = opts.withDefaults()
	s, err := store.New(ds)
	if err != nil {
		return nil, err
	}
	var within *store.Bitmap
	if len(opts.Within) > 0 {
		pred, err := s.ParsePredicate(opts.Within)
		if err != nil {
			return nil, err
		}
		within = s.Eval(pred)
		if within.Count() == 0 {
			return nil, fmt.Errorf("tagdm: filter %v matches no tagging actions", opts.Within)
		}
	}
	gs := (&groups.Enumerator{Store: s, MinTuples: opts.MinGroupTuples, Within: within}).FullyDescribed()
	if len(gs) == 0 {
		return nil, fmt.Errorf("tagdm: no describable groups with >= %d tagging actions", opts.MinGroupTuples)
	}
	sum := opts.CustomSummarizer
	if sum == nil {
		switch opts.Signatures {
		case SignatureFrequency:
			sum = signature.NewFrequency(s)
		case SignatureTFIDF:
			sum = signature.FitTFIDF(s, gs)
		default:
			lda, err := signature.TrainLDA(s, gs, opts.Topics, opts.LDAIterations, opts.Seed)
			if err != nil {
				return nil, err
			}
			sum = lda
		}
	}
	sigs := signature.SummarizeAll(sum, s, gs)
	eng, err := core.NewEngine(s, gs, sigs)
	if err != nil {
		return nil, err
	}
	scopedN := s.Len()
	if within != nil {
		scopedN = within.Count()
	}
	return &Analysis{opts: opts, store: s, groups: gs, sigs: sigs, engine: eng, scopedN: scopedN}, nil
}

// NumGroups is the number of describable groups under analysis.
func (a *Analysis) NumGroups() int { return len(a.groups) }

// NumActions is the number of tagging action tuples under analysis: the
// whole store, or the subset matching Options.Within when a scope was set.
func (a *Analysis) NumActions() int { return a.scopedN }

// Solve dispatches the spec to the right approximate algorithm family
// (SM-LSH for similarity objectives, DV-FDP otherwise), with Fold
// constraint handling and default parameters.
func (a *Analysis) Solve(spec ProblemSpec) (Result, error) {
	return a.SolveContext(context.Background(), spec)
}

// SolveContext is Solve with an explicit context: cancellation (or a
// deadline) stops the solver at its next checkpoint, and an obs trace
// span carried by the context collects per-stage child spans.
func (a *Analysis) SolveContext(ctx context.Context, spec ProblemSpec) (Result, error) {
	return a.engine.Solve(ctx, spec, core.SolveOptions{
		LSH: core.LSHOptions{Seed: a.opts.Seed, Mode: core.Fold},
		FDP: core.FDPOptions{Mode: core.Fold},
	})
}

// Exact runs the brute-force baseline. It errors when the candidate space
// exceeds the (optional) cap; restrict the analysis or lower KHi first.
func (a *Analysis) Exact(spec ProblemSpec, opts ExactOptions) (Result, error) {
	return a.ExactContext(context.Background(), spec, opts)
}

// ExactContext is Exact with an explicit context; the enumeration polls
// cancellation every few thousand candidates, so a deadline bounds the
// exponential baseline's work.
func (a *Analysis) ExactContext(ctx context.Context, spec ProblemSpec, opts ExactOptions) (Result, error) {
	return a.engine.Exact(ctx, spec, opts)
}

// SMLSH runs the LSH-based similarity maximizer with explicit options.
func (a *Analysis) SMLSH(spec ProblemSpec, opts LSHOptions) (Result, error) {
	return a.engine.SMLSH(context.Background(), spec, opts)
}

// DVFDP runs the dispersion-based optimizer with explicit options.
func (a *Analysis) DVFDP(spec ProblemSpec, opts FDPOptions) (Result, error) {
	return a.engine.DVFDP(context.Background(), spec, opts)
}

// Describe renders a result's groups through the dataset dictionaries.
func (a *Analysis) Describe(res Result) []string { return res.Describe(a.store) }

// SetMeasure overrides the concrete pair-wise measure for one
// (dimension, measure) binding, replacing the defaults (structural overlap
// for users/items, signature cosine for tags). The paper stresses that no
// particular measure is mandated; this is the extension point.
func (a *Analysis) SetMeasure(dim Dimension, meas Measure, f PairFunc) {
	a.engine.SetPairFunc(dim, meas, f)
}

// RatingAwareItemSimilarity builds the refined set-distance measure of
// Section 2.1.1 for this analysis: two groups' common items only count
// when their average ratings differ by at most tolerance. Install it with
// SetMeasure(DimItems, MeasureSimilarity, f).
func (a *Analysis) RatingAwareItemSimilarity(tolerance float64) PairFunc {
	return mining.RatingAwareJaccardItems(a.store, a.groups, tolerance)
}

// DomainAwareUserSimilarity builds a structural user measure that compares
// attribute values with valueSim instead of strict equality (e.g.
// mining-style edit distance, or an explicit domain table).
func (a *Analysis) DomainAwareUserSimilarity(valueSim ValueSimilarity) PairFunc {
	return mining.DomainAwareStructural(a.store, store.SideUser, valueSim)
}

// DomainAwareItemSimilarity is the item-side counterpart of
// DomainAwareUserSimilarity.
func (a *Analysis) DomainAwareItemSimilarity(valueSim ValueSimilarity) PairFunc {
	return mining.DomainAwareStructural(a.store, store.SideItem, valueSim)
}

// Suggestion is one recommended tag with its evidence.
type Suggestion = recommend.Suggestion

// Recommender builds a group-based tag recommender over the dataset the
// analysis was constructed from — the kind of "subsequent action" the
// paper motivates its analysis with. Suggest returns tags a (user, item)
// pair's peer group uses, backing off to item-profile peers and finally
// the global distribution.
func (a *Analysis) Recommender(ds *Dataset) *TagRecommender {
	return &TagRecommender{
		ds:    ds,
		inner: recommend.New(a.store, a.groups, ds.TagFrequencies()),
	}
}

// TagRecommender suggests tags for (user, item) pairs.
type TagRecommender struct {
	ds    *Dataset
	inner *recommend.Recommender
}

// Suggest returns up to n tag suggestions for the given user and item ids.
func (r *TagRecommender) Suggest(user, item int32, n int) ([]Suggestion, error) {
	if user < 0 || int(user) >= len(r.ds.Users) {
		return nil, fmt.Errorf("tagdm: unknown user %d", user)
	}
	if item < 0 || int(item) >= len(r.ds.Items) {
		return nil, fmt.Errorf("tagdm: unknown item %d", item)
	}
	return r.inner.Suggest(r.ds.Users[user].Attrs, r.ds.Items[item].Attrs, n), nil
}

// GroupCloud returns the rendered frequency tag cloud of the i-th group of
// a result (topN most frequent tags).
func (a *Analysis) GroupCloud(res Result, i, topN int) string {
	if i < 0 || i >= len(res.Groups) {
		return ""
	}
	return signature.RenderCloud(signature.Cloud(a.store, res.Groups[i], topN))
}

// Cloud returns the rendered frequency tag cloud of all tagging actions
// matching the conjunctive filter, as in the paper's Figures 1-2.
func (a *Analysis) Cloud(conds map[string]string, topN int) (string, error) {
	pred, err := a.store.ParsePredicate(conds)
	if err != nil {
		return "", err
	}
	bm := a.store.Eval(pred)
	g := &groups.Group{Pred: pred, Tuples: bm, Members: bm.Slice()}
	return signature.RenderCloud(signature.Cloud(a.store, g, topN)), nil
}

// GenerateConfig re-exports the synthetic data generator configuration.
type GenerateConfig = datagen.Config

// DefaultGenerateConfig mirrors the paper's dataset scale.
func DefaultGenerateConfig() GenerateConfig { return datagen.Default() }

// SmallGenerateConfig is a fast configuration for demos and tests.
func SmallGenerateConfig() GenerateConfig { return datagen.Small() }

// GenerateDataset synthesizes a MovieLens-like tagging dataset (see
// internal/datagen for the latent structure).
func GenerateDataset(cfg GenerateConfig) (*Dataset, error) {
	w, err := datagen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return w.Dataset, nil
}

// ReadDatasetJSON loads a dataset written by Dataset.WriteJSON.
func ReadDatasetJSON(r io.Reader) (*Dataset, error) { return model.ReadJSON(r) }

// ParseQuery compiles a TagDM query string, e.g.
//
//	ANALYZE PROBLEM 3 WHERE genre=drama WITH k=3, support=1%
//	ANALYZE MAXIMIZE diversity(tags) SUBJECT TO similarity(users) >= 0.5
//
// without executing it. Use RunQuery to parse and execute in one step.
func ParseQuery(q string) (*QueryRequest, error) { return query.Parse(q) }

// QueryRequest is a parsed analysis query.
type QueryRequest = query.Request

// RunQuery parses and executes a query over the dataset: the WHERE clause
// scopes the analysis (merged into opts.Within, query values win), the
// problem or MAXIMIZE clause becomes the spec, and the default approximate
// algorithm family solves it. It returns the scoped analysis alongside the
// result so callers can render group descriptions and clouds.
func RunQuery(ds *Dataset, q string, opts Options) (*Analysis, Result, error) {
	req, err := query.Parse(q)
	if err != nil {
		return nil, Result{}, err
	}
	if len(req.Where) > 0 {
		merged := make(map[string]string, len(opts.Within)+len(req.Where))
		for k, v := range opts.Within {
			merged[k] = v
		}
		for k, v := range req.Where {
			merged[k] = v
		}
		opts.Within = merged
	}
	a, err := NewAnalysis(ds, opts)
	if err != nil {
		return nil, Result{}, err
	}
	spec, err := req.Resolve(a.NumActions())
	if err != nil {
		return nil, Result{}, err
	}
	res, err := a.Solve(spec)
	if err != nil {
		return nil, Result{}, err
	}
	return a, res, nil
}
