// Command tagdm-serve runs the TagDM analysis server: an HTTP JSON API
// answering ANALYZE queries over a dataset that keeps growing through
// streaming ingest.
//
// Usage:
//
//	tagdm-serve [-addr :8080] [-data file.json | -generate small|paper |
//	            -user-attrs a,b -item-attrs c,d]
//	            [-data-dir dir] [-fsync always|interval|none]
//	            [-checkpoint-every N]
//	            [-min-group-tuples 5] [-workers 4] [-shards 1] [-queue 64]
//	            [-cache 256] [-refresh-every 1] [-timeout 30s] [-seed 1]
//	            [-max-ingest-bytes N] [-max-analyze-bytes N]
//	            [-prewarm] [-access-log] [-slow-ms 0] [-debug-addr addr]
//
// The corpus comes from one of three places: a dataset JSON file written by
// tagdm-datagen or Dataset.WriteJSON (-data), a synthesized corpus
// (-generate), or an empty dataset over explicit schemas (-user-attrs /
// -item-attrs) to be populated entirely through POST /v1/actions.
//
// Durability: -data-dir enables the write-ahead log and snapshot
// checkpoints. Ingest batches are acknowledged only after they are durable
// (per -fsync), and a restart recovers the exact pre-crash state by loading
// the latest checkpoint and replaying the WAL tail. Once a checkpoint
// exists, the corpus flags become optional — `tagdm-serve -data-dir dir`
// alone resumes from disk; supplying one anyway only matters on first boot.
//
// Endpoints:
//
//	POST /v1/analyze  {"query": "ANALYZE PROBLEM 3 WITH k=3, support=1%"}
//	POST /v1/actions  {"actions": [{"user": 1, "item": 2, "tags": ["epic"]}]}
//	POST /v1/refresh  force snapshot publication
//	GET  /v1/stats    cache hit rate, queue depth, solve latencies (JSON)
//	GET  /metrics     the same in Prometheus text format
//	GET  /healthz     liveness (reports read-only degradation)
//
// Observability: -access-log writes one structured JSON line per request
// to stderr; -slow-ms N additionally dumps the resolved problem spec and
// the request's span tree for any solve slower than N milliseconds;
// -debug-addr :6060 serves net/http/pprof profiles on a separate listener
// so profiling traffic never shares the API port.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops accepting,
// in-flight requests drain (bounded by -shutdown-timeout), the WAL is
// flushed and fsync'd, and a final checkpoint is written so the next boot
// replays nothing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tagdm"
	"tagdm/internal/obs"
	"tagdm/internal/server"
	"tagdm/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tagdm-serve: ")
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dataFile     = flag.String("data", "", "dataset JSON file")
		generate     = flag.String("generate", "", "synthesize a corpus instead: small or paper")
		userAttrs    = flag.String("user-attrs", "", "comma-separated user schema for an empty dataset")
		itemAttrs    = flag.String("item-attrs", "", "comma-separated item schema for an empty dataset")
		dataDir      = flag.String("data-dir", "", "enable durability: WAL + checkpoints in this directory")
		fsyncMode    = flag.String("fsync", "always", "WAL fsync policy: always, interval, or none")
		ckptEvery    = flag.Int("checkpoint-every", 0, "checkpoint after N WAL records (0 = default, negative disables)")
		minTuples    = flag.Int("min-group-tuples", 5, "drop groups smaller than this")
		workers      = flag.Int("workers", 4, "concurrent solver executions per shard")
		shards       = flag.Int("shards", 1, "snapshot replicas each analyze scatters across (1 = no sharding)")
		queue        = flag.Int("queue", 64, "queued analyze requests beyond the running ones")
		cacheSize    = flag.Int("cache", 256, "analyze result cache entries (0 disables)")
		refreshEvery = flag.Int("refresh-every", 1, "publish a snapshot every N inserts")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request solve timeout")
		seed         = flag.Int64("seed", 1, "LSH seed for reproducible answers")
		maxIngest    = flag.Int64("max-ingest-bytes", 0, "largest accepted /v1/actions body (0 = default 32MiB)")
		maxAnalyze   = flag.Int64("max-analyze-bytes", 0, "largest accepted /v1/analyze body (0 = default 1MiB)")
		prewarm      = flag.Bool("prewarm", false, "build pair matrices at snapshot publication instead of on first query")
		matrixBudget = flag.Int64("matrix-budget", 0, "byte cap on cached pair matrices, shared across shard replicas (0 = unlimited)")
		accessLog    = flag.Bool("access-log", false, "write a structured JSON access-log line per request to stderr")
		slowMs       = flag.Int("slow-ms", 0, "log spec and span tree of solves slower than this many milliseconds (0 disables)")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this address (e.g. :6060); empty disables")
		drainTimeout = flag.Duration("shutdown-timeout", 15*time.Second, "grace period for draining requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	ds, err := loadDataset(*dataFile, *generate, *userAttrs, *itemAttrs, *dataDir)
	if err != nil {
		log.Fatal(err)
	}
	sync, err := wal.ParseSyncMode(*fsyncMode)
	if err != nil {
		log.Fatal(err)
	}

	cache := *cacheSize
	if cache == 0 {
		cache = -1 // Config treats 0 as "default"; negative disables
	}
	var logger *slog.Logger
	if *accessLog || *slowMs > 0 {
		logger = obs.NewJSONLogger(os.Stderr, slog.LevelInfo)
	}
	srv, err := server.New(server.Config{
		Dataset:           ds,
		MinGroupTuples:    *minTuples,
		Workers:           *workers,
		Shards:            *shards,
		QueueDepth:        *queue,
		CacheSize:         cache,
		RefreshEvery:      *refreshEvery,
		SolveTimeout:      *timeout,
		Seed:              *seed,
		PrewarmMatrices:   *prewarm,
		MatrixBudgetBytes: *matrixBudget,
		AccessLog:         logger,
		SlowSolve:         time.Duration(*slowMs) * time.Millisecond,
		DataDir:           *dataDir,
		FsyncMode:         sync,
		CheckpointEvery:   *ckptEvery,
		MaxIngestBytes:    *maxIngest,
		MaxAnalyzeBytes:   *maxAnalyze,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *debugAddr != "" {
		// The blank net/http/pprof import registers its handlers on
		// http.DefaultServeMux; serving that mux on a dedicated listener
		// keeps profiling off the API port.
		go func() {
			log.Printf("pprof on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	if *dataDir != "" {
		rec := srv.Recovery()
		if rec.Recovered {
			log.Printf("recovered from %s: checkpoint seq %d (epoch %d), replayed %d WAL records (%d actions), torn tail %d bytes",
				*dataDir, rec.CheckpointSeq, rec.CheckpointEpoch, rec.ReplayedRecords, rec.ReplayedActions, rec.TornTailBytes)
		} else {
			log.Printf("durability on: fresh data dir %s (fsync=%s)", *dataDir, *fsyncMode)
		}
	}
	stats := srv.DatasetStats()
	log.Printf("serving %d users, %d items, %d actions, %d-tag vocabulary on %s (%d shard(s) x %d workers)",
		stats.Users, stats.Items, stats.Actions, stats.VocabSize, *addr, *shards, *workers)
	log.Printf("endpoints: POST /v1/analyze, POST /v1/actions, POST /v1/refresh, GET /v1/stats, GET /metrics")

	// Serve until SIGINT/SIGTERM, then shut down in order: stop accepting,
	// drain in-flight requests, flush+fsync the WAL and write a final
	// checkpoint (srv.Shutdown) so the next boot replays nothing.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	select {
	case err := <-done:
		srv.Close()
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received, draining (up to %s)", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("http shutdown: %v", err)
		}
		if err := srv.Shutdown(drainCtx); err != nil {
			log.Printf("server shutdown: %v", err)
			os.Exit(1)
		}
		log.Printf("shutdown complete")
	}
}

// loadDataset resolves the corpus sources in priority order: file,
// generator, empty schemas. With -data-dir set, no corpus source is needed
// (nil means "resume from the checkpoint on disk"); the server rejects a
// fresh data dir with no corpus at boot with a clear error.
func loadDataset(dataFile, generate, userAttrs, itemAttrs, dataDir string) (*tagdm.Dataset, error) {
	switch {
	case dataFile != "":
		f, err := os.Open(dataFile)
		if err != nil {
			return nil, err
		}
		//tagdm:allow-discard read-only dataset handle, nothing buffered to lose
		defer f.Close()
		return tagdm.ReadDatasetJSON(f)
	case generate != "":
		var cfg tagdm.GenerateConfig
		switch generate {
		case "small":
			cfg = tagdm.SmallGenerateConfig()
		case "paper":
			cfg = tagdm.DefaultGenerateConfig()
		default:
			return nil, fmt.Errorf("unknown -generate %q (want small or paper)", generate)
		}
		return tagdm.GenerateDataset(cfg)
	case userAttrs != "" && itemAttrs != "":
		return tagdm.NewDataset(
			tagdm.NewSchema(splitAttrs(userAttrs)...),
			tagdm.NewSchema(splitAttrs(itemAttrs)...),
		), nil
	case dataDir != "":
		return nil, nil
	default:
		return nil, fmt.Errorf("need -data, -generate, -data-dir, or both -user-attrs and -item-attrs")
	}
}

func splitAttrs(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
