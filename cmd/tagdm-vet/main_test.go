package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"tagdm/internal/analysis/load"
)

// buildVet compiles the tagdm-vet binary into a temp dir.
func buildVet(t *testing.T, root string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tagdm-vet")
	cmd := exec.Command("go", "build", "-o", bin, "tagdm/cmd/tagdm-vet")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building tagdm-vet: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolProtocol drives the binary through the real `go vet -vettool`
// protocol: the module's own packages must come back clean, and a scratch
// module that claims a scoped import path and violates two invariants must
// fail the vet run with both diagnostics on stderr.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet")
	}
	root, err := load.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	bin := buildVet(t, root)

	t.Run("version probe", func(t *testing.T) {
		out, err := exec.Command(bin, "-V=full").Output()
		if err != nil {
			t.Fatalf("-V=full: %v", err)
		}
		f := strings.Fields(string(out))
		// The go command parses this line as the tool's cache key and
		// requires exactly this shape for a devel tool.
		if len(f) < 3 || f[0] != "tagdm-vet" || f[1] != "version" ||
			(f[2] == "devel" && !strings.HasPrefix(f[len(f)-1], "buildID=")) {
			t.Fatalf("-V=full output %q does not satisfy the go command's toolID format", out)
		}
	})

	t.Run("clean package", func(t *testing.T) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/wal/")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go vet -vettool over internal/wal: %v\n%s", err, out)
		}
	})

	t.Run("seeded violations", func(t *testing.T) {
		// A module claiming a scoped production import path puts its files
		// in ctxflow/errsink territory without touching the real tree.
		dir := t.TempDir()
		writeFile(t, filepath.Join(dir, "go.mod"), "module tagdm/internal/server\n\ngo 1.24\n")
		writeFile(t, filepath.Join(dir, "bad.go"), `package server

import (
	"context"
	"os"
)

func leak(f *os.File) {
	f.Close()
}

func stray() context.Context {
	return context.Background()
}
`)
		cmd := exec.Command("go", "vet", "-vettool="+bin, ".")
		cmd.Dir = dir
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Run(); err == nil {
			t.Fatalf("go vet passed over seeded violations:\n%s", out.String())
		}
		for _, want := range []string{"[errsink]", "[ctxflow]", "error from Close is discarded", "context.Background below the facade"} {
			if !strings.Contains(out.String(), want) {
				t.Errorf("vet output missing %q:\n%s", want, out.String())
			}
		}
	})
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
