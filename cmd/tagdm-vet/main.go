// Command tagdm-vet runs the repository's static-analysis suite: the
// analyzers under internal/analysis/passes that enforce the codebase's
// concurrency, durability and observability invariants.
//
// It runs in two modes. As a vet tool, where the go command drives it one
// compilation unit at a time with full cross-package fact propagation:
//
//	go build -o /tmp/tagdm-vet tagdm/cmd/tagdm-vet
//	go vet -vettool=/tmp/tagdm-vet ./...
//
// And standalone, loading packages itself via `go list -export`:
//
//	tagdm-vet            # everything: ./... from the module root
//	tagdm-vet ./internal/server/ ./internal/wal/
//	tagdm-vet -list      # print the analyzers
//
// Exit status: 0 clean, 1 operational failure, 2 diagnostics reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tagdm/internal/analysis/load"
	"tagdm/internal/analysis/suite"
	"tagdm/internal/analysis/unitchecker"
)

func main() {
	// The go command's vettool protocol is single-argument: the -V and
	// -flags probes, then one config file per vet unit.
	if len(os.Args) == 2 {
		if a := os.Args[1]; strings.HasPrefix(a, "-V") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			unitchecker.Main(suite.Analyzers())
			return
		}
	}
	standalone()
}

func standalone() {
	fs := flag.NewFlagSet("tagdm-vet", flag.ExitOnError)
	root := fs.String("root", "", "module root directory (default: nearest go.mod above the working directory)")
	list := fs.Bool("list", false, "print the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tagdm-vet [-root dir] [pattern ...]\n\nAnalyzers:\n")
		for _, a := range suite.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(os.Args[1:]) //tagdm:allow-discard ExitOnError: Parse cannot return

	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	if *root == "" {
		r, err := load.ModuleRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tagdm-vet: %v\n", err)
			os.Exit(1)
		}
		*root = r
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := suite.RunPatterns(*root, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tagdm-vet: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}
