// Command tagdm-promcheck validates a metrics exposition read from stdin.
//
// Usage:
//
//	curl -s localhost:8080/metrics  | tagdm-promcheck [-require name ...]
//	curl -s localhost:8080/v1/stats | tagdm-promcheck -json
//
// The default mode runs the strict Prometheus text-format parser from
// internal/obs: every sample must belong to a declared TYPE, histogram
// bucket series must be cumulative and +Inf-terminated with consistent
// _sum/_count, label escapes must be well-formed, and duplicate series are
// rejected. On success it prints a one-line summary (families, samples)
// and exits 0; any violation prints the offending line and exits 1.
//
// -require name (repeatable) additionally asserts that a metric family is
// present, so CI smoke jobs can pin the catalog they depend on.
//
// -json switches to validating the input as a single JSON object instead,
// for the /v1/stats endpoint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"tagdm/internal/obs"
)

// stringList collects repeated -require flags.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tagdm-promcheck: ")
	var require stringList
	asJSON := flag.Bool("json", false, "validate stdin as a JSON object (for /v1/stats) instead of Prometheus text")
	flag.Var(&require, "require", "require this metric family to be present (repeatable)")
	flag.Parse()

	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(data) == 0 {
		log.Fatal("empty input")
	}

	if *asJSON {
		var obj map[string]any
		if err := json.Unmarshal(data, &obj); err != nil {
			log.Fatalf("invalid JSON: %v", err)
		}
		if len(obj) == 0 {
			log.Fatal("JSON object has no fields")
		}
		fmt.Printf("ok: JSON object with %d top-level fields\n", len(obj))
		return
	}

	pt, err := obs.ParsePrometheus(data)
	if err != nil {
		log.Fatalf("invalid exposition: %v", err)
	}
	for _, name := range require {
		if !pt.HasFamily(name) {
			log.Fatalf("required family %s is missing", name)
		}
	}
	fmt.Printf("ok: %d families, %d samples\n", len(pt.Types), len(pt.Samples))
}
