package main

import (
	"bytes"
	"strings"
	"testing"

	"tagdm"
)

func replDataset(t *testing.T) *tagdm.Dataset {
	t.Helper()
	ds, err := tagdm.GenerateDataset(tagdm.SmallGenerateConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunREPL(t *testing.T) {
	ds := replDataset(t)
	in := strings.NewReader(strings.Join([]string{
		"# a comment line",
		"",
		"ANALYZE MAXIMIZE diversity(tags) WITH k=2, support=2%",
		"this is not a query",
		"quit",
	}, "\n"))
	var out bytes.Buffer
	runREPL(ds, tagdm.Options{Signatures: tagdm.SignatureFrequency}, in, &out)
	text := out.String()
	if !strings.Contains(text, "algorithm DV-FDP") {
		t.Fatalf("REPL did not answer the query:\n%s", text)
	}
	if !strings.Contains(text, "error:") {
		t.Fatalf("REPL did not report the bad query:\n%s", text)
	}
	// The comment and the blank line must not produce errors.
	if strings.Count(text, "error:") != 1 {
		t.Fatalf("unexpected error count:\n%s", text)
	}
}

func TestRunREPLEOF(t *testing.T) {
	ds := replDataset(t)
	var out bytes.Buffer
	runREPL(ds, tagdm.Options{Signatures: tagdm.SignatureFrequency}, strings.NewReader(""), &out)
	if !strings.Contains(out.String(), "tagdm>") {
		t.Fatal("no prompt printed")
	}
}

func TestLoadDatasetDefault(t *testing.T) {
	ds, err := loadDataset("")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Actions) == 0 {
		t.Fatal("default dataset empty")
	}
	if _, err := loadDataset("/nonexistent/path.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
