// Command tagdm runs one TagDM mining problem over a dataset and prints the
// groups it finds. The dataset is either loaded from a JSON file produced
// by tagdm-datagen (or Dataset.WriteJSON) or synthesized on the fly.
//
// Usage:
//
//	tagdm [-data file.json] [-problem 1..6] [-k 3] [-support-pct 1]
//	      [-q 0.5] [-r 0.5] [-within attr=value,attr=value]
//	      [-signatures lda|tfidf|frequency] [-exact]
//
// Example: find diverse user sub-populations that agree on similar items
// (Problem 3) among male users only:
//
//	tagdm -problem 3 -within gender=male
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"tagdm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tagdm: ")
	var (
		dataFile   = flag.String("data", "", "dataset JSON file (default: synthesize a small corpus)")
		problemID  = flag.Int("problem", 1, "Table 1 problem instance (1-6)")
		k          = flag.Int("k", 3, "maximum number of groups to return")
		supportPct = flag.Float64("support-pct", 1, "minimum group support as percent of tuples")
		q          = flag.Float64("q", 0.5, "user-dimension constraint threshold")
		r          = flag.Float64("r", 0.5, "item-dimension constraint threshold")
		within     = flag.String("within", "", "comma-separated attr=value filter scoping the analysis")
		sigMethod  = flag.String("signatures", "lda", "tag signature method: lda, tfidf or frequency")
		topics     = flag.Int("topics", 25, "LDA topic count")
		exact      = flag.Bool("exact", false, "run the exact brute force instead of the approximate algorithm")
		seed       = flag.Int64("seed", 1, "seed for LDA and LSH")
		queryStr   = flag.String("query", "", "run a query string instead of flags, e.g. 'ANALYZE PROBLEM 3 WHERE genre=drama WITH k=3, support=1%'")
		repl       = flag.Bool("repl", false, "interactive mode: read one query per line from stdin")
	)
	flag.Parse()

	ds, err := loadDataset(*dataFile)
	if err != nil {
		log.Fatal(err)
	}

	opts := tagdm.Options{Topics: *topics, Seed: *seed}
	switch *sigMethod {
	case "lda":
		opts.Signatures = tagdm.SignatureLDA
	case "tfidf":
		opts.Signatures = tagdm.SignatureTFIDF
	case "frequency":
		opts.Signatures = tagdm.SignatureFrequency
	default:
		log.Fatalf("unknown signature method %q", *sigMethod)
	}
	if *within != "" {
		opts.Within = map[string]string{}
		for _, kv := range strings.Split(*within, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				log.Fatalf("bad -within entry %q (want attr=value)", kv)
			}
			opts.Within[strings.TrimSpace(parts[0])] = strings.TrimSpace(parts[1])
		}
	}

	if *repl {
		runREPL(ds, opts, os.Stdin, os.Stdout)
		return
	}
	if *queryStr != "" {
		runQuery(ds, *queryStr, opts)
		return
	}

	a, err := tagdm.NewAnalysis(ds, opts)
	if err != nil {
		log.Fatal(err)
	}
	support := int(*supportPct / 100 * float64(a.NumActions()))
	spec, err := tagdm.Problem(*problemID, *k, support, *q, *r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s over %d groups (%d actions), support >= %d\n",
		spec.Name, a.NumGroups(), a.NumActions(), support)

	var res tagdm.Result
	if *exact {
		res, err = a.Exact(spec, tagdm.ExactOptions{})
	} else {
		res, err = a.Solve(spec)
	}
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		fmt.Println("no feasible set of groups (null result)")
		os.Exit(1)
	}
	fmt.Printf("algorithm %s: objective %.4f, support %d, %s\n",
		res.Algorithm, res.Objective, res.Support, res.Elapsed.Round(1000))
	for i, desc := range a.Describe(res) {
		fmt.Printf("  %s\n    tags: %s\n", desc, a.GroupCloud(res, i, 6))
	}
}

func runQuery(ds *tagdm.Dataset, q string, opts tagdm.Options) {
	a, res, err := tagdm.RunQuery(ds, q, opts)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Found {
		fmt.Println("no feasible set of groups (null result)")
		os.Exit(1)
	}
	fmt.Printf("algorithm %s: objective %.4f, support %d, %s\n",
		res.Algorithm, res.Objective, res.Support, res.Elapsed.Round(1000))
	for i, desc := range a.Describe(res) {
		fmt.Printf("  %s\n    tags: %s\n", desc, a.GroupCloud(res, i, 6))
	}
}

// runREPL reads one query per line, executing each against the shared
// dataset. Empty lines and lines starting with '#' are skipped; "quit"
// exits. Errors are reported per query without terminating the session.
func runREPL(ds *tagdm.Dataset, opts tagdm.Options, in io.Reader, out io.Writer) {
	fmt.Fprintln(out, "tagdm> enter ANALYZE queries, one per line (quit to exit)")
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for {
		fmt.Fprint(out, "tagdm> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case line == "quit" || line == "exit":
			return
		}
		a, res, err := tagdm.RunQuery(ds, line, opts)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			continue
		}
		if !res.Found {
			fmt.Fprintln(out, "no feasible set of groups (null result)")
			continue
		}
		fmt.Fprintf(out, "algorithm %s: objective %.4f, support %d, %s\n",
			res.Algorithm, res.Objective, res.Support, res.Elapsed.Round(1000))
		for i, desc := range a.Describe(res) {
			fmt.Fprintf(out, "  %s\n    tags: %s\n", desc, a.GroupCloud(res, i, 6))
		}
	}
}

func loadDataset(path string) (*tagdm.Dataset, error) {
	if path == "" {
		return tagdm.GenerateDataset(tagdm.SmallGenerateConfig())
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//tagdm:allow-discard read-only dataset handle, nothing buffered to lose
	defer f.Close()
	return tagdm.ReadDatasetJSON(f)
}
