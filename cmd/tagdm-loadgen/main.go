// Command tagdm-loadgen drives a running tagdm-serve with an open-loop
// workload and reports throughput and latency quantiles, for measuring the
// sharded scatter-gather serving tier under load.
//
// Usage:
//
//	tagdm-loadgen [-addr http://localhost:8080] [-duration 10s] [-rate 50]
//	              [-concurrency 256] [-ingest-ratio 0.05] [-warmup 0s]
//	              [-queries "Q1;Q2"] [-seed 1] [-timeout 10s]
//	              [-label name] [-commit sha] [-timestamp ts] [-out file]
//
// The generator is open-loop: arrivals follow a Poisson process at -rate
// requests per second, scheduled independently of completions, so a slow
// server accumulates in-flight requests instead of silently throttling the
// offered load (the coordinated-omission trap of closed-loop harnesses).
// -concurrency only caps in-flight requests as a client-side safety valve;
// arrivals that would exceed it are counted as dropped, never blocked on.
//
// Traffic mixes analyze and ingest: each arrival is an ANALYZE query with
// probability 1 - ingest-ratio (rotating through the -queries list,
// semicolon-separated) and otherwise a small ingest batch referencing
// entities the server reported in /v1/stats, so the store grows and
// snapshots keep publishing while analyses run — the HTAP mix the serving
// tier is built for.
//
// Results are printed as a human summary on stderr and appended to -out
// (default stdout) as one self-describing JSON record carrying the load
// configuration, the server shape (shards, workers, epoch), the git commit
// (-commit, defaulting to `git rev-parse --short HEAD` when available) and
// a timestamp (-timestamp overrides the wall clock for reproducible
// records), plus per-class throughput and p50/p95/p99 latencies.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"
)

type classStats struct {
	mu       sync.Mutex
	latMs    []float64
	errors   int64
	statuses map[int]int64
}

func (c *classStats) record(lat time.Duration, status int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.statuses == nil {
		c.statuses = make(map[int]int64)
	}
	if err != nil {
		c.errors++
		return
	}
	c.statuses[status]++
	if status == http.StatusOK {
		c.latMs = append(c.latMs, float64(lat)/1e6)
	}
}

// classReport is the per-traffic-class slice of the emitted JSON record.
type classReport struct {
	Sent      int64            `json:"sent"`
	OK        int64            `json:"ok"`
	Errors    int64            `json:"errors"`
	Statuses  map[string]int64 `json:"statuses,omitempty"`
	MeanMs    float64          `json:"mean_ms"`
	P50Ms     float64          `json:"p50_ms"`
	P95Ms     float64          `json:"p95_ms"`
	P99Ms     float64          `json:"p99_ms"`
	Throughpt float64          `json:"throughput_rps"`
}

func (c *classStats) report(elapsed time.Duration) classReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sent int64 = c.errors
	statuses := make(map[string]int64, len(c.statuses))
	for code, n := range c.statuses {
		sent += n
		statuses[fmt.Sprint(code)] = n
	}
	r := classReport{
		Sent:     sent,
		OK:       c.statuses[http.StatusOK],
		Errors:   c.errors,
		Statuses: statuses,
		MeanMs:   mean(c.latMs),
		P50Ms:    percentile(c.latMs, 0.50),
		P95Ms:    percentile(c.latMs, 0.95),
		P99Ms:    percentile(c.latMs, 0.99),
	}
	if elapsed > 0 {
		r.Throughpt = float64(r.OK) / elapsed.Seconds()
	}
	return r
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// percentile returns the q-quantile (0 < q <= 1) by the nearest-rank rule
// over a copy of xs; 0 when empty.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// serverShape is what /v1/stats tells us about the target before the run.
type serverShape struct {
	Shards int   `json:"shards"`
	Epoch  int64 `json:"epoch"`
	Users  int   `json:"users"`
	Items  int   `json:"items"`
	Pool   struct {
		Workers int `json:"workers"`
	} `json:"pool"`
}

// loadRecord is the self-describing JSON measurement appended to -out.
type loadRecord struct {
	Bench     string `json:"bench"` // always "loadgen"
	Label     string `json:"label,omitempty"`
	Commit    string `json:"commit,omitempty"`
	Timestamp string `json:"timestamp"`

	Config struct {
		Addr        string   `json:"addr"`
		RatePerSec  float64  `json:"rate_per_sec"`
		DurationSec float64  `json:"duration_sec"`
		Concurrency int      `json:"concurrency"`
		IngestRatio float64  `json:"ingest_ratio"`
		Seed        int64    `json:"seed"`
		Queries     []string `json:"queries"`
		Server      struct {
			Shards  int   `json:"shards"`
			Workers int   `json:"workers"`
			Epoch   int64 `json:"start_epoch"`
		} `json:"server"`
	} `json:"config"`

	ElapsedSec    float64 `json:"elapsed_sec"`
	Arrivals      int64   `json:"arrivals"`
	Dropped       int64   `json:"dropped"` // shed client-side at the concurrency cap
	ThroughputRPS float64 `json:"throughput_rps"`

	Analyze classReport `json:"analyze"`
	Ingest  classReport `json:"ingest"`
}

func defaultQueries() []string {
	return []string{
		"ANALYZE PROBLEM 1 WITH k=3, support=1%",
		"ANALYZE PROBLEM 3 WITH k=3, support=1%",
		"ANALYZE PROBLEM 5 WITH k=3, support=1%",
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tagdm-loadgen: ")
	var (
		addr        = flag.String("addr", "http://localhost:8080", "base URL of the tagdm-serve target")
		duration    = flag.Duration("duration", 10*time.Second, "measured run length")
		warmup      = flag.Duration("warmup", 0, "unmeasured warm-up run before the measured window")
		rate        = flag.Float64("rate", 50, "offered load: Poisson arrivals per second")
		concurrency = flag.Int("concurrency", 256, "in-flight request cap (client-side safety valve)")
		ingestRatio = flag.Float64("ingest-ratio", 0.05, "fraction of arrivals that are ingest batches")
		queries     = flag.String("queries", "", "semicolon-separated ANALYZE statements (default: problems 1, 3, 5)")
		seed        = flag.Int64("seed", 1, "RNG seed for arrivals and traffic mix")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request client timeout")
		label       = flag.String("label", "", "free-form label recorded with the results (e.g. shards=4)")
		commit      = flag.String("commit", "", "git commit recorded with the results (default: git rev-parse --short HEAD)")
		timestamp   = flag.String("timestamp", "", "timestamp recorded with the results (default: wall clock, RFC 3339)")
		out         = flag.String("out", "", "append the JSON record to this file (default stdout)")
	)
	flag.Parse()
	if *rate <= 0 {
		log.Fatal("-rate must be positive")
	}
	if *ingestRatio < 0 || *ingestRatio > 1 {
		log.Fatal("-ingest-ratio must be in [0, 1]")
	}

	qs := defaultQueries()
	if *queries != "" {
		qs = qs[:0]
		for _, q := range strings.Split(*queries, ";") {
			if q = strings.TrimSpace(q); q != "" {
				qs = append(qs, q)
			}
		}
		if len(qs) == 0 {
			log.Fatal("-queries contained no statements")
		}
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency,
			MaxIdleConnsPerHost: *concurrency,
		},
	}
	shape, err := fetchShape(client, *addr)
	if err != nil {
		log.Fatalf("probing %s/v1/stats: %v", *addr, err)
	}
	if shape.Users == 0 || shape.Items == 0 {
		log.Fatal("target has no users or items; ingest traffic needs entities to reference")
	}
	log.Printf("target: %d shard(s) x %d workers, epoch %d, %d users, %d items",
		shape.Shards, shape.Pool.Workers, shape.Epoch, shape.Users, shape.Items)

	if *warmup > 0 {
		log.Printf("warmup: %s at %.0f req/s", *warmup, *rate)
		gen := &generator{client: client, addr: *addr, queries: qs, shape: shape,
			rate: *rate, ingestRatio: *ingestRatio, concurrency: *concurrency,
			rng: rand.New(rand.NewSource(*seed + 1))}
		gen.run(*warmup)
	}

	log.Printf("measuring: %s at %.0f req/s (ingest ratio %.2f)", *duration, *rate, *ingestRatio)
	gen := &generator{client: client, addr: *addr, queries: qs, shape: shape,
		rate: *rate, ingestRatio: *ingestRatio, concurrency: *concurrency,
		rng: rand.New(rand.NewSource(*seed))}
	elapsed := gen.run(*duration)

	var rec loadRecord
	rec.Bench = "loadgen"
	rec.Label = *label
	rec.Commit = resolveCommit(*commit)
	rec.Timestamp = *timestamp
	if rec.Timestamp == "" {
		rec.Timestamp = time.Now().UTC().Format(time.RFC3339)
	}
	rec.Config.Addr = *addr
	rec.Config.RatePerSec = *rate
	rec.Config.DurationSec = duration.Seconds()
	rec.Config.Concurrency = *concurrency
	rec.Config.IngestRatio = *ingestRatio
	rec.Config.Seed = *seed
	rec.Config.Queries = qs
	rec.Config.Server.Shards = shape.Shards
	rec.Config.Server.Workers = shape.Pool.Workers
	rec.Config.Server.Epoch = shape.Epoch
	rec.ElapsedSec = elapsed.Seconds()
	rec.Arrivals = gen.arrivals
	rec.Dropped = gen.dropped
	rec.Analyze = gen.analyze.report(elapsed)
	rec.Ingest = gen.ingest.report(elapsed)
	rec.ThroughputRPS = rec.Analyze.Throughpt + rec.Ingest.Throughpt

	log.Printf("done: %d arrivals, %d dropped, %.1f req/s completed",
		rec.Arrivals, rec.Dropped, rec.ThroughputRPS)
	log.Printf("analyze: %d ok, %d errors, p50 %.2fms p95 %.2fms p99 %.2fms",
		rec.Analyze.OK, rec.Analyze.Errors, rec.Analyze.P50Ms, rec.Analyze.P95Ms, rec.Analyze.P99Ms)
	log.Printf("ingest:  %d ok, %d errors, p50 %.2fms p95 %.2fms p99 %.2fms",
		rec.Ingest.OK, rec.Ingest.Errors, rec.Ingest.P50Ms, rec.Ingest.P95Ms, rec.Ingest.P99Ms)

	line, err := json.Marshal(rec)
	if err != nil {
		log.Fatal(err)
	}
	line = append(line, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(line); err != nil {
			log.Fatal(err)
		}
		return
	}
	f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write(line); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// resolveCommit returns the explicit flag value, or asks git for the
// current short commit; empty (not fatal) when neither is available, so
// records from exported binaries still emit.
func resolveCommit(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fetchShape(client *http.Client, addr string) (serverShape, error) {
	var shape serverShape
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return shape, err
	}
	//tagdm:allow-discard read-only response body, nothing buffered to lose
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return shape, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&shape); err != nil {
		return shape, err
	}
	return shape, nil
}

// generator owns one open-loop run. The arrival loop is single-threaded
// (it draws inter-arrival gaps and request payloads from rng), each request
// runs on its own goroutine, and results fold into the per-class stats.
type generator struct {
	client      *http.Client
	addr        string
	queries     []string
	shape       serverShape
	rate        float64
	ingestRatio float64
	concurrency int
	rng         *rand.Rand

	arrivals int64
	dropped  int64
	analyze  classStats
	ingest   classStats
}

var ingestTags = []string{"epic", "classic", "quirky", "slow", "loud", "tense"}

func (g *generator) run(d time.Duration) time.Duration {
	start := time.Now()
	deadline := start.Add(d)
	sem := make(chan struct{}, g.concurrency)
	var wg sync.WaitGroup
	next := start
	for {
		// Poisson arrivals: exponential inter-arrival gaps, scheduled on an
		// absolute timeline so a slow send cannot throttle the offered load.
		gap := time.Duration(g.rng.ExpFloat64() / g.rate * float64(time.Second))
		next = next.Add(gap)
		if next.After(deadline) {
			break
		}
		time.Sleep(time.Until(next))
		g.arrivals++
		method, path, body, stats := g.nextRequest()
		select {
		case sem <- struct{}{}:
		default:
			// Client-side cap reached. Open-loop discipline: record the
			// drop and move on; never block the arrival clock.
			g.dropped++
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			g.fire(method, path, body, stats)
		}()
	}
	wg.Wait()
	return time.Since(start)
}

// nextRequest draws one arrival from the traffic mix. Runs on the arrival
// loop goroutine only — it owns the rng.
func (g *generator) nextRequest() (method, path string, body []byte, stats *classStats) {
	if g.rng.Float64() < g.ingestRatio {
		type action struct {
			User   int32    `json:"user"`
			Item   int32    `json:"item"`
			Rating float64  `json:"rating"`
			Tags   []string `json:"tags"`
		}
		batch := struct {
			Actions []action `json:"actions"`
		}{Actions: []action{{
			User:   int32(g.rng.Intn(g.shape.Users)),
			Item:   int32(g.rng.Intn(g.shape.Items)),
			Rating: float64(g.rng.Intn(10)) / 2,
			Tags:   []string{ingestTags[g.rng.Intn(len(ingestTags))]},
		}}}
		body, _ = json.Marshal(batch)
		return http.MethodPost, "/v1/actions", body, &g.ingest
	}
	q := g.queries[g.rng.Intn(len(g.queries))]
	body, _ = json.Marshal(map[string]string{"query": q})
	return http.MethodPost, "/v1/analyze", body, &g.analyze
}

func (g *generator) fire(method, path string, body []byte, stats *classStats) {
	start := time.Now()
	req, err := http.NewRequest(method, g.addr+path, bytes.NewReader(body))
	if err != nil {
		stats.record(0, 0, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		stats.record(0, 0, err)
		return
	}
	// Drain so the connection is reusable; latency includes reading the
	// full response, which is what a real client pays.
	_, _ = io.Copy(io.Discard, resp.Body)
	//tagdm:allow-discard read-only response body, already drained
	resp.Body.Close()
	stats.record(time.Since(start), resp.StatusCode, nil)
}
