// Command tagdm-bench regenerates the paper's evaluation artifacts: the
// tag clouds of Figures 1-2, the execution-time and quality comparisons of
// Figures 3-6, the tuple-count sweep of Figures 7-8, the simulated user
// study of Figure 9, and the Table 1 / Table 2 summaries.
//
// Usage:
//
//	tagdm-bench [-scale fast|paper] [-fig 1|3|5|7|9] [-table 1|2] [-all]
//	            [-bnb] [-sparse] [-trace] [-json] [-commit sha] [-timestamp ts]
//
// With -all (the default when no selector is given) every artifact is
// produced in order. -fig 3 covers Figures 3 and 4 (same runs measure time
// and quality); likewise 5 covers 6, and 7 covers 8.
//
// With -json, the timed artifacts (figures 3/5/7, ablations, the k sweep)
// are emitted as one JSON object per line on stdout instead of rendered
// tables, for appending to a BENCH_*.json performance trajectory:
//
//	{"bench":"fig3","scale":"fast","problem":"Problem 1","algorithm":"Exact",
//	 "millis":2.1,"quality":0.83,"found":true}
//
// The first -json line is a self-describing meta record carrying the git
// commit (-commit, defaulting to `git rev-parse --short HEAD` when
// available), a timestamp (-timestamp overrides the wall clock, for
// reproducible records), and the run configuration, so a trajectory file
// pins each measurement to the code that produced it.
//
// Untimed artifacts (tag clouds, the user study, tables) keep their text
// form and are skipped under -json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"tagdm/internal/core"
	"tagdm/internal/datagen"
	"tagdm/internal/experiments"
	"tagdm/internal/mining"
	"tagdm/internal/store"
	"tagdm/internal/userstudy"
)

// benchRecord is one JSON-lines measurement; zero-valued selector fields
// are omitted so each bench kind carries only its own axes.
type benchRecord struct {
	Bench     string `json:"bench"`
	Scale     string `json:"scale"`
	Problem   string `json:"problem,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	Sweep     string `json:"sweep,omitempty"`
	Variant   string `json:"variant,omitempty"`
	Tuples    int    `json:"tuples,omitempty"`
	NumGroups int    `json:"groups,omitempty"`
	K         int    `json:"k,omitempty"`
	// Stage names one solver phase (trace records): matrix, enumerate,
	// lsh_build, bucket_scan, greedy, local_search, or total.
	Stage  string  `json:"stage,omitempty"`
	Millis float64 `json:"millis"`
	// Quality is present where the underlying run has a quality axis —
	// pointers, not omitempty, so a measured 0.0 still appears.
	Quality *float64 `json:"quality,omitempty"`
	// Candidates is the Exact enumeration size (k-sweep records only) or
	// the examined-candidate count (bnb records).
	Candidates int64 `json:"candidates,omitempty"`
	// Pruned is the branch-and-bound pruned-candidate count (bnb records).
	Pruned int64 `json:"pruned,omitempty"`
	// Found is present where the underlying run tracks feasibility
	// (figures and ablations); k-sweep rows measure time only.
	Found *bool `json:"found,omitempty"`
}

func millis(d time.Duration) float64 { return float64(d) / 1e6 }

// benchMeta is the first -json line: it pins the trajectory records that
// follow to the code revision, time, and environment that produced them.
type benchMeta struct {
	Bench     string `json:"bench"` // always "meta"
	Scale     string `json:"scale"`
	Commit    string `json:"commit,omitempty"`
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Args      string `json:"args"`
}

// resolveCommit returns the explicit flag value, or asks git for the
// current short commit; empty (not fatal) when neither is available, so
// exported binaries outside a checkout still emit records.
func resolveCommit(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

type jsonEmitter struct {
	enc   *json.Encoder
	scale string
}

func newJSONEmitter(scale, commit, timestamp string) *jsonEmitter {
	e := &jsonEmitter{enc: json.NewEncoder(os.Stdout), scale: scale}
	if timestamp == "" {
		timestamp = time.Now().UTC().Format(time.RFC3339)
	}
	meta := benchMeta{
		Bench:     "meta",
		Scale:     scale,
		Commit:    resolveCommit(commit),
		Timestamp: timestamp,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Args:      strings.Join(os.Args[1:], " "),
	}
	if err := e.enc.Encode(meta); err != nil {
		log.Fatal(err)
	}
	return e
}

func (e *jsonEmitter) record(r benchRecord) {
	r.Scale = e.scale
	if err := e.enc.Encode(r); err != nil {
		log.Fatal(err)
	}
}

func (e *jsonEmitter) table(bench string, t experiments.Table) {
	for _, r := range t.Rows {
		found, quality := r.Found, r.Quality
		e.record(benchRecord{Bench: bench, Problem: r.Problem, Algorithm: r.Algorithm,
			Millis: millis(r.Elapsed), Quality: &quality, Found: &found})
	}
}

func (e *jsonEmitter) binTable(bench string, t experiments.BinTable) {
	for _, r := range t.Rows {
		found, quality := r.Found, r.Quality
		e.record(benchRecord{Bench: bench, Problem: r.Problem, Algorithm: r.Algorithm,
			Tuples: r.Tuples, NumGroups: r.NumGroups,
			Millis: millis(r.Elapsed), Quality: &quality, Found: &found})
	}
}

func (e *jsonEmitter) ablationTable(t experiments.AblationTable) {
	for _, r := range t.Rows {
		found, quality := r.Found, r.Quality
		e.record(benchRecord{Bench: "ablation", Sweep: r.Sweep, Variant: r.Variant,
			Millis: millis(r.Elapsed), Quality: &quality, Found: &found})
	}
}

func (e *jsonEmitter) bnbTable(t experiments.BnBTable) {
	for _, r := range t.Rows {
		algo := "Exact"
		if r.Parallel {
			algo = "Exact-parallel"
		}
		found := r.Found
		e.record(benchRecord{Bench: "bnb", Problem: r.Problem, Algorithm: algo,
			Variant: r.Variant, Millis: millis(r.Elapsed),
			Candidates: r.Examined, Pruned: r.Pruned, Found: &found})
	}
}

func (e *jsonEmitter) stageTable(t experiments.StageTraceTable) {
	for _, r := range t.Rows {
		e.record(benchRecord{Bench: "trace", Problem: r.Problem,
			Algorithm: r.Algorithm, Stage: r.Stage, Millis: millis(r.Wall)})
	}
}

func (e *jsonEmitter) ksweepTable(t experiments.KSweepTable) {
	for _, r := range t.Rows {
		e.record(benchRecord{Bench: "ksweep", Algorithm: "Exact", K: r.K,
			Candidates: r.Candidates, Millis: millis(r.Exact)})
		e.record(benchRecord{Bench: "ksweep", Algorithm: "Exact-parallel", K: r.K,
			Candidates: r.Candidates, Millis: millis(r.ExactPar)})
		e.record(benchRecord{Bench: "ksweep", Algorithm: r.ApproxAlgo, K: r.K,
			Millis: millis(r.Approx)})
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tagdm-bench: ")
	scale := flag.String("scale", "fast", "corpus scale: fast or paper")
	fig := flag.Int("fig", 0, "regenerate one figure pair (1, 3, 5, 7 or 9)")
	table := flag.Int("table", 0, "print one table (1 or 2)")
	ablation := flag.Bool("ablation", false, "run the design-choice ablation sweeps")
	transfer := flag.Bool("transfer", false, "run the attribute-transfer experiment")
	ksweep := flag.Bool("ksweep", false, "run the k-scalability sweep (Exact blow-up)")
	bnb := flag.Bool("bnb", false, "run the Exact branch-and-bound pruning sweep (pruning on vs off)")
	sparse := flag.Bool("sparse", false, "run the sparse-corpus union-kernel sweep (dense vs compressed bitmaps)")
	matrixReuse := flag.Bool("matrix-reuse", false, "run the pair-matrix lifecycle sweep (scratch build vs dirty-row rebuild vs shared-cache hit)")
	trace := flag.Bool("trace", false, "emit per-stage solver timing breakdowns (matrix, enumerate, lsh_build, ...)")
	all := flag.Bool("all", false, "regenerate everything")
	asJSON := flag.Bool("json", false, "emit timed results as JSON lines instead of tables")
	commit := flag.String("commit", "", "git commit recorded in the -json meta line (default: git rev-parse --short HEAD)")
	timestamp := flag.String("timestamp", "", "timestamp recorded in the -json meta line (default: wall clock, RFC 3339)")
	flag.Parse()

	if *fig == 0 && *table == 0 && !*ablation && !*transfer && !*ksweep && !*bnb && !*sparse && !*trace && !*matrixReuse {
		*all = true
	}

	var cfg experiments.Config
	switch *scale {
	case "fast":
		cfg = experiments.FastConfig()
	case "paper":
		cfg = experiments.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q (want fast or paper)", *scale)
	}

	var emit *jsonEmitter
	if *asJSON {
		emit = newJSONEmitter(*scale, *commit, *timestamp)
	}

	if emit == nil {
		if *table == 1 || *all {
			printTable1()
		}
		if *table == 2 || *all {
			printTable2()
		}
	} else if *table != 0 || *fig == 1 || *fig == 9 || *transfer {
		// Untimed artifacts have no JSON form; say so instead of exiting
		// zero with empty output.
		fmt.Fprintln(os.Stderr, "tagdm-bench: tables, figures 1/9 and -transfer are text-only and skipped under -json")
	}
	if *table != 0 && !*all && *fig == 0 {
		return
	}

	needSetup := *all || *ablation || *ksweep || *bnb || *trace || *matrixReuse || *fig == 1 || *fig == 3 || *fig == 5 || *fig == 7
	var st *experiments.Setup
	if needSetup {
		fmt.Fprintf(os.Stderr, "building %s pipeline (datagen + LDA)...\n", *scale)
		var err error
		st, err = experiments.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pipeline ready: %d actions, %d groups\n\n",
			st.Store.Len(), len(st.Groups))
	}
	p := experiments.PaperParams()

	if (*all || *fig == 1) && emit == nil {
		allCloud, stateCloud, director, state, err := experiments.TagClouds(st, 12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== Figure 1: tag signature, director=%s, all users ==\n%s\n\n", director, allCloud)
		fmt.Printf("== Figure 2: tag signature, director=%s, state=%s users ==\n%s\n\n", director, state, stateCloud)
	}
	if *all || *fig == 3 {
		tab, err := experiments.SimilarityProblems(st, p)
		if err != nil {
			log.Fatal(err)
		}
		if emit != nil {
			emit.table("fig3", tab)
		} else {
			fmt.Println(tab.Render())
		}
	}
	if *all || *fig == 5 {
		tab, err := experiments.DiversityProblems(st, p)
		if err != nil {
			log.Fatal(err)
		}
		if emit != nil {
			emit.table("fig5", tab)
		} else {
			fmt.Println(tab.Render())
		}
	}
	if *all || *fig == 7 {
		tab, err := experiments.TupleSweep(st, p, nil)
		if err != nil {
			log.Fatal(err)
		}
		if emit != nil {
			emit.binTable("fig7", tab)
		} else {
			fmt.Println(tab.Render())
		}
	}
	if (*all || *fig == 9) && emit == nil {
		res, err := userstudy.Run(userstudy.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Render())
	}
	if *all || *ablation {
		tab, err := experiments.Ablations(st, p)
		if err != nil {
			log.Fatal(err)
		}
		if emit != nil {
			emit.ablationTable(tab)
		} else {
			fmt.Println(tab.Render())
		}
	}
	if *all || *bnb {
		tab, err := experiments.BnBSweep(st, p)
		if err != nil {
			log.Fatal(err)
		}
		if emit != nil {
			emit.bnbTable(tab)
		} else {
			fmt.Println(tab.Render())
		}
	}
	if *all || *trace {
		tab, err := experiments.StageTraces(st, p)
		if err != nil {
			log.Fatal(err)
		}
		if emit != nil {
			emit.stageTable(tab)
		} else {
			fmt.Println(tab.Render())
		}
	}
	if *all || *ksweep {
		tab, err := experiments.KSweep(st, p, nil)
		if err != nil {
			log.Fatal(err)
		}
		if emit != nil {
			emit.ksweepTable(tab)
		} else {
			fmt.Println(tab.Render())
		}
	}
	if (*all || *transfer) && emit == nil {
		rep, err := experiments.Transfer(datagen.DefaultTransfer())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep.Render())
	}
	if *all || *sparse {
		runSparse(emit)
	}
	if *all || *matrixReuse {
		runMatrixReuse(st, emit)
	}
}

// --- pair-matrix lifecycle ---

// runMatrixReuse measures the three ways a solve can obtain a pair matrix
// after PR 10: a from-scratch build (what every epoch paid before), a
// dirty-row rebuild carrying the previous epoch's matrix with one group
// changed (what a 1-group insert pays now), and a shared-cache hit (what
// every replica and every later solve of the same epoch pays). Each variant
// is verified bit-identical to the scratch build before its time is
// reported; any mismatch aborts the run — the carry-over contract is that
// reuse never changes a single bit.
func runMatrixReuse(st *experiments.Setup, emit *jsonEmitter) {
	gs := st.Groups
	n := len(gs)
	if n < 2 {
		log.Fatal("matrix-reuse: corpus has fewer than 2 groups")
	}
	pair := st.Engine.PairFunc(mining.Tags, mining.Diversity)

	timeIt := func(reps int, f func()) time.Duration {
		start := time.Now()
		for r := 0; r < reps; r++ {
			f()
		}
		return time.Since(start) / time.Duration(reps)
	}

	var scratch *mining.PairMatrix
	coldPer := timeIt(3, func() { scratch = mining.NewPairMatrix(gs, pair, 0) })

	// A 1-group insert dirties exactly one row: the appended group (group
	// IDs are append-only, so inserts only ever dirty the tail).
	dirty := make([]bool, n)
	dirty[n-1] = true
	var rebuilt *mining.PairMatrix
	rebuildPer := timeIt(20, func() { rebuilt = scratch.RebuildRows(gs, pair, dirty, 0) })
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rebuilt.At(i, j) != scratch.At(i, j) {
				log.Fatalf("matrix-reuse: rebuild diverged from scratch at (%d,%d): %v != %v",
					i, j, rebuilt.At(i, j), scratch.At(i, j))
			}
		}
	}

	// Shared-cache hit: the first PairMatrix call materializes, every
	// later one (same engine, any replica adopting its cache) is a lookup.
	cached := st.Engine.PairMatrix(mining.Tags, mining.Diversity)
	hitPer := timeIt(1000, func() { cached = st.Engine.PairMatrix(mining.Tags, mining.Diversity) })
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if cached.At(i, j) != scratch.At(i, j) {
				log.Fatalf("matrix-reuse: cached matrix diverged from scratch at (%d,%d)", i, j)
			}
		}
	}

	speedup := float64(coldPer) / float64(rebuildPer)
	if emit != nil {
		emit.record(benchRecord{Bench: "matrix-reuse", NumGroups: n, Variant: "scratch", Millis: millis(coldPer)})
		emit.record(benchRecord{Bench: "matrix-reuse", NumGroups: n, Variant: "rebuild-1-dirty", Millis: millis(rebuildPer)})
		emit.record(benchRecord{Bench: "matrix-reuse", NumGroups: n, Variant: "cache-hit", Millis: millis(hitPer)})
	} else {
		fmt.Println("== Pair-matrix lifecycle: scratch vs dirty-row rebuild vs cache hit ==")
		fmt.Printf("%-18s %12s\n", "variant", "millis")
		fmt.Printf("%-18s %12.4f\n", "scratch", millis(coldPer))
		fmt.Printf("%-18s %12.4f\n", "rebuild-1-dirty", millis(rebuildPer))
		fmt.Printf("%-18s %12.4f\n", "cache-hit", millis(hitPer))
		fmt.Printf("rebuild speedup over scratch: %.1fx (%d groups)\n\n", speedup, n)
	}
	fmt.Fprintf(os.Stderr, "matrix-reuse: %d groups, rebuild %.1fx cheaper than scratch\n", n, speedup)
}

// --- sparse-corpus union kernels ---

// runSparse times OrCount and the DFS-shaped UnionCountInto chain on
// synthetic sparse tuple sets over a 1M-id universe, dense words versus
// container-compressed, and records density-sensitive numbers for the
// performance trajectory (JSON rows carry sweep=density, variant=layout).
// The fixture (universe, density table, seed, triple construction) must
// stay in lockstep with BenchmarkSparseOrCount/UnionCountInto in the root
// bench_test.go so this trajectory and `go test -bench BenchmarkSparse`
// measure the same matrix.
func runSparse(emit *jsonEmitter) {
	const universe = 1 << 20
	const reps = 64
	densities := []struct {
		name string
		card int
	}{
		{"density=0.01pct", universe / 10000},
		{"density=0.1pct", universe / 1000},
		{"density=1pct", universe / 100},
	}
	if emit == nil {
		fmt.Println("== Sparse-corpus union kernels: dense words vs compressed containers ==")
		fmt.Printf("%-18s %-12s %-16s %10s\n", "density", "layout", "kernel", "micros/op")
	}
	for _, d := range densities {
		for _, layout := range []string{"dense", "compressed"} {
			rng := rand.New(rand.NewSource(11))
			sets := make([][3]*store.Bitmap, 8)
			for i := range sets {
				for j := 0; j < 3; j++ {
					bm := store.NewBitmap(universe)
					for k := 0; k < d.card; k++ {
						bm.Set(rng.Intn(universe))
					}
					if layout == "compressed" {
						bm.ToCompressed()
					}
					sets[i][j] = bm
				}
			}
			newBuf := store.NewBitmap
			if layout == "compressed" {
				newBuf = store.NewCompressedBitmap
			}
			u1, u2 := newBuf(universe), newBuf(universe)

			start := time.Now()
			for r := 0; r < reps; r++ {
				m := sets[r%len(sets)]
				_ = m[0].OrCount(m[1])
			}
			orPer := time.Since(start) / reps

			start = time.Now()
			for r := 0; r < reps; r++ {
				m := sets[r%len(sets)]
				_ = m[0].UnionCountInto(m[1], u1)
				_ = u1.UnionCountInto(m[2], u2)
			}
			unionPer := time.Since(start) / reps

			for _, row := range []struct {
				kernel string
				per    time.Duration
			}{{"OrCount", orPer}, {"UnionCountInto", unionPer}} {
				if emit != nil {
					emit.record(benchRecord{Bench: "sparse-union", Sweep: d.name,
						Variant: layout, Algorithm: row.kernel, Millis: millis(row.per)})
					continue
				}
				fmt.Printf("%-18s %-12s %-16s %10.2f\n",
					d.name, layout, row.kernel, float64(row.per)/1e3)
			}
		}
	}
	if emit == nil {
		fmt.Println()
	}
}

func printTable1() {
	fmt.Println("== Table 1: concrete TagDM problem instantiations ==")
	fmt.Printf("%-4s %-12s %-12s %-12s %-6s %-4s\n", "ID", "User", "Item", "Tag", "C", "O")
	for id := 1; id <= 6; id++ {
		spec, err := core.PaperProblem(id, 3, 0, 0.5, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-12s %-12s %-12s %-6s %-4s\n",
			id,
			spec.Constraints[0].Meas, spec.Constraints[1].Meas,
			spec.Objectives[0].Meas, "U,I", "T")
	}
	fmt.Println()
}

func printTable2() {
	fmt.Println("== Table 2: TagDM problem solutions ==")
	rows := [][3]string{
		{"similarity", "LSH based", "fold similarity constraints, filter diversity constraints"},
		{"diversity", "FDP based", "fold constraints (both kinds) into the greedy add"},
	}
	fmt.Printf("%-12s %-10s %s\n", "optimize", "algorithm", "constraint handling")
	for _, r := range rows {
		fmt.Printf("%-12s %-10s %s\n", r[0], r[1], r[2])
	}
	fmt.Println()
}
