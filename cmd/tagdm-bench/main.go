// Command tagdm-bench regenerates the paper's evaluation artifacts: the
// tag clouds of Figures 1-2, the execution-time and quality comparisons of
// Figures 3-6, the tuple-count sweep of Figures 7-8, the simulated user
// study of Figure 9, and the Table 1 / Table 2 summaries.
//
// Usage:
//
//	tagdm-bench [-scale fast|paper] [-fig 1|3|5|7|9] [-table 1|2] [-all]
//
// With -all (the default when no selector is given) every artifact is
// produced in order. -fig 3 covers Figures 3 and 4 (same runs measure time
// and quality); likewise 5 covers 6, and 7 covers 8.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tagdm/internal/core"
	"tagdm/internal/datagen"
	"tagdm/internal/experiments"
	"tagdm/internal/userstudy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tagdm-bench: ")
	scale := flag.String("scale", "fast", "corpus scale: fast or paper")
	fig := flag.Int("fig", 0, "regenerate one figure pair (1, 3, 5, 7 or 9)")
	table := flag.Int("table", 0, "print one table (1 or 2)")
	ablation := flag.Bool("ablation", false, "run the design-choice ablation sweeps")
	transfer := flag.Bool("transfer", false, "run the attribute-transfer experiment")
	ksweep := flag.Bool("ksweep", false, "run the k-scalability sweep (Exact blow-up)")
	all := flag.Bool("all", false, "regenerate everything")
	flag.Parse()

	if *fig == 0 && *table == 0 && !*ablation && !*transfer && !*ksweep {
		*all = true
	}

	var cfg experiments.Config
	switch *scale {
	case "fast":
		cfg = experiments.FastConfig()
	case "paper":
		cfg = experiments.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q (want fast or paper)", *scale)
	}

	if *table == 1 || *all {
		printTable1()
	}
	if *table == 2 || *all {
		printTable2()
	}
	if *table != 0 && !*all && *fig == 0 {
		return
	}

	needSetup := *all || *ablation || *ksweep || *fig == 1 || *fig == 3 || *fig == 5 || *fig == 7
	var st *experiments.Setup
	if needSetup {
		fmt.Fprintf(os.Stderr, "building %s pipeline (datagen + LDA)...\n", *scale)
		var err error
		st, err = experiments.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pipeline ready: %d actions, %d groups\n\n",
			st.Store.Len(), len(st.Groups))
	}
	p := experiments.PaperParams()

	if *all || *fig == 1 {
		allCloud, stateCloud, director, state, err := experiments.TagClouds(st, 12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== Figure 1: tag signature, director=%s, all users ==\n%s\n\n", director, allCloud)
		fmt.Printf("== Figure 2: tag signature, director=%s, state=%s users ==\n%s\n\n", director, state, stateCloud)
	}
	if *all || *fig == 3 {
		tab, err := experiments.SimilarityProblems(st, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tab.Render())
	}
	if *all || *fig == 5 {
		tab, err := experiments.DiversityProblems(st, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tab.Render())
	}
	if *all || *fig == 7 {
		tab, err := experiments.TupleSweep(st, p, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tab.Render())
	}
	if *all || *fig == 9 {
		res, err := userstudy.Run(userstudy.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Render())
	}
	if *all || *ablation {
		tab, err := experiments.Ablations(st, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tab.Render())
	}
	if *all || *ksweep {
		tab, err := experiments.KSweep(st, p, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tab.Render())
	}
	if *all || *transfer {
		rep, err := experiments.Transfer(datagen.DefaultTransfer())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep.Render())
	}
}

func printTable1() {
	fmt.Println("== Table 1: concrete TagDM problem instantiations ==")
	fmt.Printf("%-4s %-12s %-12s %-12s %-6s %-4s\n", "ID", "User", "Item", "Tag", "C", "O")
	for id := 1; id <= 6; id++ {
		spec, err := core.PaperProblem(id, 3, 0, 0.5, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-12s %-12s %-12s %-6s %-4s\n",
			id,
			spec.Constraints[0].Meas, spec.Constraints[1].Meas,
			spec.Objectives[0].Meas, "U,I", "T")
	}
	fmt.Println()
}

func printTable2() {
	fmt.Println("== Table 2: TagDM problem solutions ==")
	rows := [][3]string{
		{"similarity", "LSH based", "fold similarity constraints, filter diversity constraints"},
		{"diversity", "FDP based", "fold constraints (both kinds) into the greedy add"},
	}
	fmt.Printf("%-12s %-10s %s\n", "optimize", "algorithm", "constraint handling")
	for _, r := range rows {
		fmt.Printf("%-12s %-10s %s\n", r[0], r[1], r[2])
	}
	fmt.Println()
}
