// Command tagdm-datagen synthesizes a MovieLens-like tagging dataset and
// writes it to stdout (or a file) in the line-oriented JSON format that
// tagdm reads back, so the other tools can share one corpus.
//
// Usage:
//
//	tagdm-datagen [-scale small|paper] [-seed N] [-o dataset.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tagdm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tagdm-datagen: ")
	scale := flag.String("scale", "small", "corpus scale: small or paper")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var cfg tagdm.GenerateConfig
	switch *scale {
	case "small":
		cfg = tagdm.SmallGenerateConfig()
	case "paper":
		cfg = tagdm.DefaultGenerateConfig()
	default:
		log.Fatalf("unknown scale %q (want small or paper)", *scale)
	}
	cfg.Seed = *seed

	ds, err := tagdm.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := ds.WriteJSON(w); err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Fprintf(os.Stderr, "wrote %d users, %d items, %d actions, %d tags\n",
		st.Users, st.Items, st.Actions, st.VocabSize)
}
