package tagdm

import (
	"context"
	"fmt"

	"tagdm/internal/core"
	"tagdm/internal/incremental"
	"tagdm/internal/signature"
)

// Maintainer keeps a TagDM analysis current under a stream of new tagging
// actions without rebuilding the pipeline per insert — the paper's
// Section 8 future work. Group membership and bitmap indexes update on
// every Insert; signatures are re-computed lazily for changed groups on
// the next Solve.
//
// Signatures use the frequency summarizer by default (or a custom
// Summarizer): LDA would need periodic retraining, which callers can do by
// constructing a fresh Analysis at their own cadence.
type Maintainer struct {
	ds    *Dataset
	inner *incremental.Maintainer
	opts  Options
}

// NewMaintainer builds a maintainer over the dataset's current contents.
// Options.Within is not supported for streams (scoping happens per query);
// Options.Signatures other than SignatureFrequency require a
// CustomSummarizer.
func NewMaintainer(ds *Dataset, opts Options) (*Maintainer, error) {
	opts = opts.withDefaults()
	if len(opts.Within) > 0 {
		return nil, fmt.Errorf("tagdm: Within is not supported for maintained analyses")
	}
	sum := opts.CustomSummarizer
	if sum == nil {
		if opts.Signatures != SignatureFrequency {
			return nil, fmt.Errorf("tagdm: maintained analyses need SignatureFrequency or a CustomSummarizer")
		}
		sum = signature.FrequencyOfSize(ds.Vocab.Size())
	}
	inner, err := incremental.New(ds, opts.MinGroupTuples, sum)
	if err != nil {
		return nil, err
	}
	return &Maintainer{ds: ds, inner: inner, opts: opts}, nil
}

// Insert adds one tagging action. The user and item must already exist in
// the dataset; tags are interned into the vocabulary automatically.
//
// Vocabulary-growth caveat: frequency signatures index dimensions by tag
// id, so tags first seen after construction fold into the signature space
// only up to the initial vocabulary size; register the expected vocabulary
// up front (or use a CustomSummarizer with a stable space, such as a
// CategoryMapper) when brand-new tags matter. The same caveat applies to
// the streaming ingest endpoint of internal/server, whose engine is backed
// by a Maintainer exactly like this one.
func (m *Maintainer) Insert(user, item int32, rating float64, tags ...string) error {
	ids := make([]TagID, len(tags))
	for i, t := range tags {
		ids[i] = m.ds.Vocab.ID(t)
	}
	return m.inner.Insert(TaggingAction{User: user, Item: item, Rating: rating, Tags: ids})
}

// Epoch is a monotonic counter bumped on every Insert. Two equal epochs
// observe identical contents, which makes it the natural key for caching
// query results computed against a maintained analysis (the server's
// result cache keys on it).
func (m *Maintainer) Epoch() int64 { return m.inner.Version() }

// NumGroups is the current count of above-threshold groups.
func (m *Maintainer) NumGroups() int { return len(m.inner.ActiveGroups()) }

// NumActions is the current tagging action count.
func (m *Maintainer) NumActions() int { return m.inner.Store().Len() }

// Solve refreshes stale signatures and runs the spec with the default
// approximate algorithm family.
func (m *Maintainer) Solve(spec ProblemSpec) (Result, error) {
	eng, err := m.inner.Refresh()
	if err != nil {
		return Result{}, err
	}
	return eng.Solve(context.Background(), spec, core.SolveOptions{
		LSH: core.LSHOptions{Seed: m.opts.Seed, Mode: core.Fold},
		FDP: core.FDPOptions{Mode: core.Fold},
	})
}

// Describe renders a result's groups through the dataset dictionaries.
func (m *Maintainer) Describe(res Result) []string {
	return res.Describe(m.inner.Store())
}
