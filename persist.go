package tagdm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"tagdm/internal/core"
	"tagdm/internal/groups"
	"tagdm/internal/model"
	"tagdm/internal/signature"
	"tagdm/internal/store"
	"tagdm/internal/wal"
)

// Analysis persistence: Save captures everything needed to answer queries
// — the dataset and the computed group signatures — so an analysis whose
// construction cost minutes (LDA training dominates) reloads in
// milliseconds. The group universe is re-derived from the dataset on load
// (enumeration is cheap and deterministic), and the saved signatures are
// validated against it.
//
// On-disk format (v2): the gob payload is wrapped in the self-validating
// envelope shared with the server's checkpoints —
// [8-byte magic][u64 payload length][u32 crc32c][payload] — so Load
// distinguishes truncation, corruption, and wrong-file errors instead of
// surfacing a cryptic gob failure mid-decode. Files written by pre-v2
// builds (bare gob, no envelope) are rejected with a bad-magic error.

// analysisMagic identifies a v2 analysis snapshot (8 bytes, as the
// envelope requires).
const analysisMagic = "tagdman2"

type analysisSnapshot struct {
	// FormatVersion versions the payload schema within the v2 envelope.
	FormatVersion  int
	MinGroupTuples int
	Topics         int
	Seed           int64
	Within         map[string]string
	DatasetJSON    []byte
	Sigs           [][]float64
}

const analysisFormatVersion = 2

// Save writes the analysis (dataset + signatures + options) to w.
func (a *Analysis) Save(w io.Writer) error {
	var ds bytes.Buffer
	if err := a.datasetOf().WriteJSON(&ds); err != nil {
		return fmt.Errorf("tagdm: serializing dataset: %w", err)
	}
	snap := analysisSnapshot{
		FormatVersion:  analysisFormatVersion,
		MinGroupTuples: a.opts.MinGroupTuples,
		Topics:         a.opts.Topics,
		Seed:           a.opts.Seed,
		Within:         a.opts.Within,
		DatasetJSON:    ds.Bytes(),
		Sigs:           make([][]float64, len(a.sigs)),
	}
	for i, s := range a.sigs {
		snap.Sigs[i] = s.Weights
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return fmt.Errorf("tagdm: encoding analysis: %w", err)
	}
	if _, err := w.Write(wal.EncodeEnvelope(analysisMagic, payload.Bytes())); err != nil {
		return fmt.Errorf("tagdm: writing analysis: %w", err)
	}
	return nil
}

// datasetOf reconstructs a Dataset view of the store's contents. The store
// was built by denormalizing a dataset, so this inverts that step; user
// and item tables are reconstructed from the store's schemas and tuple
// payloads.
func (a *Analysis) datasetOf() *Dataset {
	// The store does not retain the original user/item tables, so rebuild
	// them from the expanded tuples: every (user id, attrs) pair seen in
	// a tuple is a user row. Users or items with no tagging actions are
	// not representable in the expanded form, which is fine for replaying
	// queries (they cannot appear in any group).
	ds := NewDataset(a.store.UserSchema, a.store.ItemSchema)
	ds.Vocab = a.store.Vocab
	seenU := map[int32]int32{}
	seenI := map[int32]int32{}
	cols := a.store.Columns()
	for t := 0; t < a.store.Len(); t++ {
		uid := a.store.TupleUser(t)
		if _, ok := seenU[uid]; !ok {
			attrs := make([]ValueCode, 0, a.store.UserSchema.Len())
			for _, c := range cols {
				if c.Side == store.SideUser {
					attrs = append(attrs, a.store.Value(t, c))
				}
			}
			for int32(len(ds.Users)) <= uid {
				ds.Users = append(ds.Users, model.User{
					ID:    int32(len(ds.Users)),
					Attrs: make([]ValueCode, a.store.UserSchema.Len()),
				})
			}
			ds.Users[uid].Attrs = attrs
			seenU[uid] = uid
		}
		iid := a.store.TupleItem(t)
		if _, ok := seenI[iid]; !ok {
			attrs := make([]ValueCode, 0, a.store.ItemSchema.Len())
			for _, c := range cols {
				if c.Side == store.SideItem {
					attrs = append(attrs, a.store.Value(t, c))
				}
			}
			for int32(len(ds.Items)) <= iid {
				ds.Items = append(ds.Items, model.Item{
					ID:    int32(len(ds.Items)),
					Attrs: make([]ValueCode, a.store.ItemSchema.Len()),
				})
			}
			ds.Items[iid].Attrs = attrs
			seenI[iid] = iid
		}
		ds.Actions = append(ds.Actions, TaggingAction{
			User:   uid,
			Item:   iid,
			Tags:   a.store.TupleTags(t),
			Rating: a.store.TupleRating(t),
		})
	}
	return ds
}

// LoadAnalysis restores an analysis written by Save. Signatures are reused
// as saved, so the expensive summarization (LDA) is skipped entirely.
// Truncated or corrupt input is rejected up front by the envelope's length
// and checksum, with an error naming the failure mode.
func LoadAnalysis(r io.Reader) (*Analysis, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("tagdm: reading analysis snapshot: %w", err)
	}
	payload, err := wal.DecodeEnvelope(analysisMagic, data)
	if err != nil {
		return nil, fmt.Errorf("tagdm: invalid analysis snapshot: %w", err)
	}
	var snap analysisSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("tagdm: decoding analysis: %w", err)
	}
	if snap.FormatVersion != analysisFormatVersion {
		return nil, fmt.Errorf("tagdm: analysis snapshot format version %d, want %d",
			snap.FormatVersion, analysisFormatVersion)
	}
	ds, err := ReadDatasetJSON(bytes.NewReader(snap.DatasetJSON))
	if err != nil {
		return nil, fmt.Errorf("tagdm: restoring dataset: %w", err)
	}
	s, err := store.New(ds)
	if err != nil {
		return nil, err
	}
	var within *store.Bitmap
	if len(snap.Within) > 0 {
		pred, err := s.ParsePredicate(snap.Within)
		if err != nil {
			return nil, err
		}
		within = s.Eval(pred)
	}
	gs := (&groups.Enumerator{Store: s, MinTuples: snap.MinGroupTuples, Within: within}).FullyDescribed()
	if len(gs) != len(snap.Sigs) {
		return nil, fmt.Errorf("tagdm: snapshot has %d signatures but enumeration yields %d groups",
			len(snap.Sigs), len(gs))
	}
	sigs := make([]signature.Signature, len(gs))
	for i, w := range snap.Sigs {
		sigs[i] = signature.Signature{Weights: w}
	}
	eng, err := core.NewEngine(s, gs, sigs)
	if err != nil {
		return nil, err
	}
	scopedN := s.Len()
	if within != nil {
		scopedN = within.Count()
	}
	return &Analysis{
		opts: Options{
			MinGroupTuples: snap.MinGroupTuples,
			Topics:         snap.Topics,
			Seed:           snap.Seed,
			Within:         snap.Within,
		},
		store:   s,
		groups:  gs,
		sigs:    sigs,
		engine:  eng,
		scopedN: scopedN,
	}, nil
}
